package dme

import (
	"fmt"

	"dscts/internal/cluster"
	"dscts/internal/ctree"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

// HierOptions configures the hierarchical clock routing of Sec. III-B.
type HierOptions struct {
	// MaxTrunkEdge, when positive, subdivides trunk edges longer than this
	// (µm) so downstream insertion sees bounded segments.
	MaxTrunkEdge float64
}

// HierarchicalRoute builds the paper's initial clock tree: for every high
// cluster, a DME tree over its low-level centroids rooted toward the high
// centroid (Fig. 5(d)); a top-level DME tree over those per-cluster roots
// toward the clock root; and star leaf nets from each low centroid to its
// sinks. All wires start on the front side; insertion decides sides later.
func HierarchicalRoute(rootPos geom.Point, sinks []geom.Point, d *cluster.Dual, tc *tech.Tech, opt HierOptions) (*ctree.Tree, error) {
	if len(sinks) == 0 {
		return nil, fmt.Errorf("dme: no sinks")
	}
	front := tc.Front()
	ro := Options{Layer: front}

	// Per-high-cluster DME over the low centroids.
	type subTree struct {
		tree *Tree
		lcs  []int // flattened low-cluster index per DME leaf
	}
	subs := make([]subTree, d.High.K())
	for h := range subs {
		var leaves []Leaf
		var lcs []int
		for lc, hh := range d.LowHigh {
			if hh != h {
				continue
			}
			leaves = append(leaves, Leaf{
				Pos:   d.LowCentroids[lc],
				Cap:   leafNetCap(d, lc, sinks, tc),
				Delay: leafNetDelay(d, lc, sinks, tc),
			})
			lcs = append(lcs, lc)
		}
		if len(leaves) == 0 {
			return nil, fmt.Errorf("dme: high cluster %d has no low clusters", h)
		}
		t, err := Route(leaves, d.High.Centroids[h], ro)
		if err != nil {
			return nil, fmt.Errorf("dme: high cluster %d: %w", h, err)
		}
		subs[h] = subTree{tree: t, lcs: lcs}
	}

	// Top-level DME over the per-cluster roots.
	topLeaves := make([]Leaf, len(subs))
	for h, s := range subs {
		topLeaves[h] = Leaf{
			Pos:   s.tree.Nodes[s.tree.Root].Pos,
			Cap:   s.tree.Cap,
			Delay: s.tree.Delay,
		}
	}
	top, err := Route(topLeaves, rootPos, ro)
	if err != nil {
		return nil, fmt.Errorf("dme: top level: %w", err)
	}

	// Assemble the full clock tree. Sized for every sink and centroid plus
	// the DME Steiner points (at most one per merge, ~2 per low cluster
	// across both hierarchy levels); trunk splitting may still grow past
	// the hint, which Add handles transparently.
	out := ctree.NewSized(rootPos, len(sinks)+4*d.NumLow()+8)
	spliceDME(out, out.Root(), top, func(t *ctree.Tree, parent, leafIdx int, pos geom.Point, snake float64) {
		// Each top leaf is the root of a per-cluster subtree; splice it in
		// at the same position (drop the duplicate node).
		sub := subs[leafIdx]
		spliceDMEAt(t, parent, sub.tree, sub.tree.Root, pos, snake, func(t *ctree.Tree, p, li int, lp geom.Point, lsnake float64) {
			lc := sub.lcs[li]
			cid := t.AddCentroid(p, lp, lc)
			t.Nodes[cid].SnakeExtra = lsnake
			t.ReserveChildren(cid, len(d.LowSinks[lc]))
			for _, si := range d.LowSinks[lc] {
				t.AddSink(cid, sinks[si], si)
			}
		})
	})
	if opt.MaxTrunkEdge > 0 {
		out.SplitTrunkEdges(opt.MaxTrunkEdge)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("dme: assembled tree invalid: %w", err)
	}
	return out, nil
}

// FlatRoute is the matching-based DME baseline of Fig. 5(c): one DME over
// all low-level centroids directly, no high-level hierarchy. Used by the
// ablation bench comparing wirelength against HierarchicalRoute.
func FlatRoute(rootPos geom.Point, sinks []geom.Point, d *cluster.Dual, tc *tech.Tech, opt HierOptions) (*ctree.Tree, error) {
	if len(sinks) == 0 {
		return nil, fmt.Errorf("dme: no sinks")
	}
	front := tc.Front()
	leaves := make([]Leaf, d.NumLow())
	for lc := range leaves {
		leaves[lc] = Leaf{
			Pos:   d.LowCentroids[lc],
			Cap:   leafNetCap(d, lc, sinks, tc),
			Delay: leafNetDelay(d, lc, sinks, tc),
		}
	}
	t, err := Route(leaves, rootPos, Options{Layer: front})
	if err != nil {
		return nil, err
	}
	out := ctree.NewSized(rootPos, len(sinks)+3*d.NumLow()+8)
	spliceDME(out, out.Root(), t, func(tr *ctree.Tree, parent, leafIdx int, pos geom.Point, snake float64) {
		cid := tr.AddCentroid(parent, pos, leafIdx)
		tr.Nodes[cid].SnakeExtra = snake
		tr.ReserveChildren(cid, len(d.LowSinks[leafIdx]))
		for _, si := range d.LowSinks[leafIdx] {
			tr.AddSink(cid, sinks[si], si)
		}
	})
	if opt.MaxTrunkEdge > 0 {
		out.SplitTrunkEdges(opt.MaxTrunkEdge)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("dme: flat tree invalid: %w", err)
	}
	return out, nil
}

// TopRoute builds the stitch stage's top tree for the partition-parallel
// pipeline: one DME over the region tap points (each leaf summarizing a
// fully synthesized region by the cap and ready delay visible at its tap),
// rooted at the clock source. Every leaf becomes a KindSteiner tap node
// with a buffer (BufferAtNode), which shields the region and is what makes
// hierarchical evaluation compose exactly (see internal/eval). The returned
// map gives tap node id → leaf index.
func TopRoute(rootPos geom.Point, leaves []Leaf, tc *tech.Tech, opt HierOptions) (*ctree.Tree, map[int]int, error) {
	if len(leaves) == 0 {
		return nil, nil, fmt.Errorf("dme: no top leaves")
	}
	t, err := Route(leaves, rootPos, Options{Layer: tc.Front()})
	if err != nil {
		return nil, nil, fmt.Errorf("dme: top route: %w", err)
	}
	out := ctree.NewSized(rootPos, 4*len(leaves)+8)
	taps := make(map[int]int, len(leaves))
	spliceDME(out, out.Root(), t, func(tr *ctree.Tree, parent, leafIdx int, pos geom.Point, snake float64) {
		id := tr.Add(parent, ctree.KindSteiner, pos)
		tr.Nodes[id].SnakeExtra = snake
		tr.Nodes[id].BufferAtNode = true
		taps[id] = leafIdx
	})
	if opt.MaxTrunkEdge > 0 {
		out.SplitTrunkEdges(opt.MaxTrunkEdge)
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("dme: top tree invalid: %w", err)
	}
	return out, taps, nil
}

// leafNetCap estimates the load a low-level leaf net presents: sink pin caps
// plus the front-side wire cap of the star net.
func leafNetCap(d *cluster.Dual, lc int, sinks []geom.Point, tc *tech.Tech) float64 {
	front := tc.Front()
	c := 0.0
	for _, si := range d.LowSinks[lc] {
		c += tc.SinkCap + front.UnitCap*sinks[si].Dist(d.LowCentroids[lc])
	}
	return c
}

// leafNetDelay estimates the slowest star-branch delay inside the leaf net.
func leafNetDelay(d *cluster.Dual, lc int, sinks []geom.Point, tc *tech.Tech) float64 {
	front := tc.Front()
	worst := 0.0
	for _, si := range d.LowSinks[lc] {
		l := sinks[si].Dist(d.LowCentroids[lc])
		if dl := front.UnitRes * l * (front.UnitCap*l + tc.SinkCap); dl > worst {
			worst = dl
		}
	}
	return worst
}

// leafFn attaches a routed DME leaf into the clock tree under parent.
type leafFn func(t *ctree.Tree, parent, leafIdx int, pos geom.Point, snake float64)

// spliceDME copies a routed DME tree into the clock tree under parent,
// turning internal nodes into Steiner nodes and delegating leaves to onLeaf.
func spliceDME(t *ctree.Tree, parent int, dt *Tree, onLeaf leafFn) {
	spliceDMEAt(t, parent, dt, dt.Root, dt.Nodes[dt.Root].Pos, dt.Nodes[dt.Root].SnakeExtra, onLeaf)
}

// spliceDMEAt splices the subtree of dt rooted at dn under parent, placing
// the spliced root at pos (with snake carried over from the outer edge).
func spliceDMEAt(t *ctree.Tree, parent int, dt *Tree, dn int, pos geom.Point, snake float64, onLeaf leafFn) {
	kids := dmeChildren(dt)
	var rec func(parent, di int, pos geom.Point, snake float64)
	rec = func(parent, di int, pos geom.Point, snake float64) {
		n := dt.Nodes[di]
		if n.LeafIdx >= 0 {
			onLeaf(t, parent, n.LeafIdx, pos, snake)
			return
		}
		id := t.Add(parent, ctree.KindSteiner, pos)
		t.Nodes[id].SnakeExtra = snake
		for _, k := range kids[di] {
			rec(id, k, dt.Nodes[k].Pos, dt.Nodes[k].SnakeExtra)
		}
	}
	rec(parent, dn, pos, snake)
}

func dmeChildren(dt *Tree) [][]int {
	kids := make([][]int, len(dt.Nodes))
	for i, n := range dt.Nodes {
		if n.Parent >= 0 {
			kids[n.Parent] = append(kids[n.Parent], i)
		}
	}
	return kids
}
