package core

// The partition-parallel mega-scale pipeline (DESIGN.md §3). The monolithic
// five-phase flow holds every sink, cluster and DP state in memory at once;
// at million-sink scale several of its phases grow superlinearly. This file
// splits the die into capacity-bounded regions (internal/partition), runs
// the full clustering→DME→insertion→refinement stack per region — regions
// fan out over the shared worker budget, each region's inner phases run on
// its slice of that budget — and stitches the region roots under a buffered
// top tree with a cross-region skew-balancing pass. Evaluation composes the
// per-region reports hierarchically (internal/eval) instead of re-walking
// the merged tree.
//
// Determinism contract: the partition, each region's synthesis, the stitch
// and the composed metrics are all pure functions of (placement, tech,
// options) — never of the worker count or the order regions happen to
// finish in. Regions are processed into slots indexed by region ID and the
// stitch consumes them in ID order, so Workers=1 and Workers=N produce
// bit-identical trees, and a permuted region list produces the same result
// as the canonical one.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"dscts/internal/arena"
	"dscts/internal/cluster"
	"dscts/internal/corner"
	"dscts/internal/ctree"
	"dscts/internal/dme"
	"dscts/internal/eval"
	"dscts/internal/fault"
	"dscts/internal/geom"
	"dscts/internal/insert"
	"dscts/internal/par"
	"dscts/internal/partition"
	"dscts/internal/refine"
	"dscts/internal/tech"
)

// RegionStat is one region's slice of a partitioned run, in Outcome.Regions.
type RegionStat struct {
	// ID is the partition region ID.
	ID int
	// Sinks is the region's sink count.
	Sinks int
	// Buffers, NTSVs and WL are the region-internal resource totals.
	Buffers int
	NTSVs   int
	WL      float64
	// Latency and Skew are region-internal (from the region tap), in ps.
	Latency float64
	Skew    float64
	// Arrival is the tap arrival time through the stitched top tree (ps);
	// Arrival+Latency is the region's worst global sink delay.
	Arrival float64
	// Time is the region's synthesis wall time.
	Time time.Duration
}

// regionJobs recycles right-sized scratch arenas across the concurrent
// region stacks of the partitioned pipeline and the dirty scopes of ECO
// re-synthesis. Regions run concurrently, so they never share the caller's
// Options.Arena; each checks a job out of this size-bucketed pool instead,
// which makes repeated partitioned runs (and chained ECOs) warm-start their
// per-region working sets. Purely a memory-reuse layer — results are
// bit-identical with or without a warm hit.
var regionJobs = arena.NewJobPool(0)

// stages bundles the routed, inserted and refined tree of one synthesis
// scope — the whole net for the monolithic flow, or one region.
type stages struct {
	tree   *ctree.Tree
	dual   *cluster.Dual
	dp     *insert.Result
	refine *refine.Report

	routeTime, insertTime, refineTime time.Duration
}

// runStages executes the route→insert→refine sequence on one scope with the
// given worker budget. It is the monolithic flow minus evaluation, reused
// verbatim per region by the partitioned pipeline; emit may be nil.
func runStages(ctx context.Context, rootPos geom.Point, sinks []geom.Point, tc *tech.Tech, opt Options, workers int, emit func(Phase, bool, time.Duration)) (*stages, error) {
	if emit == nil {
		emit = func(Phase, bool, time.Duration) {}
	}
	// Defaults.
	d := opt.Dual
	if d.HighSize == 0 && d.LowSize == 0 {
		def := cluster.DefaultDualOptions()
		d.HighSize, d.LowSize, d.MaxIter = def.HighSize, def.LowSize, def.MaxIter
		d.Seed = def.Seed
	}
	if d.MaxIter == 0 {
		d.MaxIter = 40
	}
	d.Workers = workers
	d.Arena = opt.Arena
	front := tc.Front()
	if d.CapOf == nil {
		d.CapOf = func(s, c geom.Point) float64 { return tc.SinkCap + front.UnitCap*s.Dist(c) }
		d.CapLimit = 0.6 * tc.Buf.MaxCap
	}
	maxEdge := opt.MaxTrunkEdge
	if maxEdge <= 0 {
		// Keep per-segment wire cap well under the buffer budget.
		maxEdge = 40 // µm: finer than the optimal buffer spacing so the DP decides
	}

	st := &stages{}

	// Phase 1: hierarchical clock routing.
	if err := opt.Faults.Check(ctx, fault.PointRoute); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	emit(PhaseRoute, false, 0)
	t0 := time.Now()
	dual, err := cluster.DualLevel(sinks, d)
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}
	st.dual = dual
	var tree *ctree.Tree
	if opt.UseFlatDME {
		tree, err = dme.FlatRoute(rootPos, sinks, dual, tc, dme.HierOptions{MaxTrunkEdge: maxEdge})
	} else {
		tree, err = dme.HierarchicalRoute(rootPos, sinks, dual, tc, dme.HierOptions{MaxTrunkEdge: maxEdge})
	}
	if err != nil {
		return nil, fmt.Errorf("core: routing: %w", err)
	}
	st.tree = tree
	st.routeTime = time.Since(t0)
	emit(PhaseRoute, true, st.routeTime)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Phase 2: concurrent buffer and nTSV insertion.
	if err := opt.Faults.Check(ctx, fault.PointInsert); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	emit(PhaseInsert, false, 0)
	t1 := time.Now()
	cfg := insert.DefaultConfig(tc)
	if opt.Alpha != 0 || opt.Beta != 0 || opt.Gamma != 0 {
		cfg.Alpha, cfg.Beta, cfg.Gamma = opt.Alpha, opt.Beta, opt.Gamma
	}
	cfg.SelectMinLatency = opt.SelectMinLatency
	cfg.KeepRootSet = opt.KeepRootSet
	cfg.DiversePruning = opt.DiversePruning
	cfg.MaxPerSide = opt.MaxPerSide
	cfg.Workers = workers
	cfg.Arena = opt.Arena
	switch {
	case opt.Mode == SingleSide:
		cfg.ModeOf = func(treeID, fanout int) insert.Mode { return insert.ModeIntra }
	case opt.FanoutThreshold > 0:
		th := opt.FanoutThreshold
		cfg.ModeOf = func(treeID, fanout int) insert.Mode {
			if fanout >= th {
				return insert.ModeFull
			}
			return insert.ModeIntra
		}
	}
	dp, err := insert.RunContext(ctx, tree, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: insertion: %w", err)
	}
	st.dp = dp
	st.insertTime = time.Since(t1)
	emit(PhaseInsert, true, st.insertTime)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Phase 3: skew refinement.
	if !opt.SkipRefine {
		if err := opt.Faults.Check(ctx, fault.PointRefine); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		emit(PhaseRefine, false, 0)
		t2 := time.Now()
		rp := opt.Refine
		if rp.TriggerPct == 0 {
			rp = refine.DefaultParams()
		}
		rp.Workers = workers
		rp.Arena = opt.Arena
		rr, err := refine.RefineContext(ctx, tree, tc, rp)
		if err != nil {
			return nil, fmt.Errorf("core: refinement: %w", err)
		}
		st.refine = rr
		st.refineTime = time.Since(t2)
		emit(PhaseRefine, true, st.refineTime)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return st, nil
}

// synthesizePartitioned is the partition-parallel pipeline entry, reached
// from SynthesizeContext when the placement overflows the region capacity.
func synthesizePartitioned(ctx context.Context, rootPos geom.Point, sinks []geom.Point, tc *tech.Tech, opt Options, start time.Time) (*Outcome, error) {
	emit := func(ph Phase, done bool, elapsed time.Duration) {
		if opt.Progress != nil {
			opt.Progress(Progress{Phase: ph, Done: done, Elapsed: elapsed})
		}
	}
	emit(PhasePartition, false, 0)
	tp := time.Now()
	regions, err := partition.Split(sinks, opt.Partition)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out, err := synthesizeRegions(ctx, rootPos, sinks, tc, opt, regions, tp)
	if err != nil {
		return nil, err
	}
	out.TotalTime = time.Since(start)
	return out, nil
}

// synthesizeRegions runs the region pipeline over an explicit region list.
// The list is canonicalized by region ID first, so any permutation of the
// same regions produces an identical result (TestRegionOrderInvariance).
func synthesizeRegions(ctx context.Context, rootPos geom.Point, sinks []geom.Point, tc *tech.Tech, opt Options, regions []partition.Region, tPartition time.Time) (*Outcome, error) {
	regions = append([]partition.Region(nil), regions...)
	sort.Slice(regions, func(a, b int) bool { return regions[a].ID < regions[b].ID })
	if err := partition.Validate(regions, len(sinks)); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	emit := func(ph Phase, done bool, elapsed time.Duration) {
		if opt.Progress != nil {
			opt.Progress(Progress{Phase: ph, Done: done, Elapsed: elapsed})
		}
	}
	out := &Outcome{}

	// Region fan-out: the outer loop distributes the worker budget across
	// regions, each region's inner phases run on an equal slice of it. The
	// outer fan-out is additionally capped at the physical core count —
	// beyond it, extra in-flight regions only inflate peak memory and GC
	// pressure without adding parallelism. The engine is deterministic in
	// every worker count, so the split affects wall-clock only, never
	// results.
	workers := par.N(opt.Workers)
	outer := workers
	if cores := runtime.GOMAXPROCS(0); outer > cores {
		outer = cores
	}
	if opt.RegionExec != nil && outer < len(regions) {
		// An installed executor schedules the regions itself (peer
		// dispatchers, a steal queue); capping the fan-out at the local
		// core count would serialize its dispatch, so every region is
		// offered at once — the extra goroutines just wait on results.
		outer = len(regions)
	}
	inner := workers / len(regions)
	if inner < 1 {
		inner = 1
	}
	type regionRun struct {
		out  *RegionOut
		stat RegionStat
		err  error
	}
	runs := make([]regionRun, len(regions))
	var done atomic.Int64
	par.ForEach(outer, len(regions), func(i int) {
		r := regions[i]
		local := make([]geom.Point, len(r.Sinks))
		for j, si := range r.Sinks {
			local[j] = sinks[si]
		}
		t0 := time.Now()
		w := RegionWork{ID: r.ID, Anchor: r.Anchor, Sinks: local}
		var ro *RegionOut
		var err error
		if opt.RegionExec != nil {
			ro, err = opt.RegionExec(ctx, w)
			if err == nil {
				err = validateRegionOut(ro, len(r.Sinks))
			}
		} else {
			ro, err = RunRegion(ctx, w, tc, opt, inner)
		}
		if err != nil {
			runs[i].err = fmt.Errorf("region %d: %w", r.ID, err)
			return
		}
		sum := ro.Sum
		sum.Sinks = r.Sinks
		runs[i] = regionRun{out: ro, stat: RegionStat{
			ID: r.ID, Sinks: len(r.Sinks),
			Buffers: sum.Metrics.Buffers, NTSVs: sum.Metrics.NTSVs, WL: sum.Metrics.WL,
			Latency: sum.Metrics.Latency, Skew: sum.Metrics.Skew,
			Time: time.Since(t0),
		}}
		if opt.Progress != nil {
			opt.Progress(Progress{Phase: PhasePartition, Point: int(done.Add(1)), Total: len(regions)})
		}
	})
	sums := make([]*eval.RegionEval, len(regions))
	trees := make([]*ctree.Tree, len(regions))
	var dpTotal insert.Result
	for i := range runs {
		if runs[i].err != nil {
			return nil, fmt.Errorf("core: %w", runs[i].err)
		}
		sums[i] = runs[i].out.Sum
		trees[i] = runs[i].out.Tree
		out.Regions = append(out.Regions, runs[i].stat)
		out.RouteTime += runs[i].out.RouteTime
		out.InsertTime += runs[i].out.InsertTime
		out.RefineTime += runs[i].out.RefineTime
		dpTotal.Nodes += runs[i].out.DPNodes
		dpTotal.Solutions += runs[i].out.DPSolutions
	}
	out.DP = &dpTotal
	out.PartitionTime = time.Since(tPartition)
	emit(PhasePartition, true, out.PartitionTime)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	if err := stitchAndCompose(ctx, rootPos, regions, trees, sums, tc, opt, out, emit); err != nil {
		return nil, err
	}
	if opt.RetainECO {
		out.Retained = &ECOState{
			Root: rootPos, Sinks: sinks, Tech: tc, Opt: retainedOptions(opt),
			Regions: regions, Trees: trees, Sums: sums,
			arena: retainedArena(opt, len(sinks)),
		}
	}
	return out, nil
}

// stitchAndCompose is the shared tail of the partitioned pipeline and of
// partitioned incremental (ECO) re-synthesis: it stitches the top tree over
// the region taps, grafts the region trees into one validated clock tree,
// composes the metrics hierarchically and runs multi-corner sign-off. The
// caller has already filled out.Regions (region ID order) and the per-phase
// work times; the region trees are only read, never mutated, so retained
// trees may be shared across outcomes.
func stitchAndCompose(ctx context.Context, rootPos geom.Point, regions []partition.Region, trees []*ctree.Tree, sums []*eval.RegionEval, tc *tech.Tech, opt Options, out *Outcome, emit func(Phase, bool, time.Duration)) error {
	if err := opt.Faults.Check(ctx, fault.PointStitch); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	emit(PhaseStitch, false, 0)
	ts := time.Now()
	ev := eval.New(tc, eval.Elmore)
	top, taps, err := stitchTop(rootPos, regions, sums, tc, opt, ev)
	if err != nil {
		return err
	}
	arrivals, err := ev.TopDelays(top, taps, sums)
	if err != nil {
		return fmt.Errorf("core: stitch: %w", err)
	}
	for i := range out.Regions {
		out.Regions[i].Arrival = arrivals[i]
	}
	merged, err := graftRegions(top, taps, trees, regions)
	if err != nil {
		return err
	}
	if err := merged.Validate(); err != nil {
		return fmt.Errorf("core: stitched tree invalid: %w", err)
	}
	out.Tree = merged
	out.StitchTime = time.Since(ts)
	emit(PhaseStitch, true, out.StitchTime)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %w", err)
	}

	// Evaluation composes the region reports hierarchically — no walk of
	// the merged tree (TestComposeHierMatchesFullEval pins the equality).
	emit(PhaseEval, false, 0)
	t3 := time.Now()
	m, err := ev.ComposeHier(top, taps, sums)
	if err != nil {
		return fmt.Errorf("core: evaluation: %w", err)
	}
	out.Metrics = m
	emit(PhaseEval, true, time.Since(t3))

	if len(opt.Corners) > 0 {
		if err := signoffCorners(ctx, out, tc, opt, emit); err != nil {
			return err
		}
	}
	return nil
}

// stitchTop builds the balanced top tree: DME over region taps, a
// deterministic cap-legality buffering pass, and the iterative cross-region
// skew-balancing snake pass.
func stitchTop(rootPos geom.Point, regions []partition.Region, sums []*eval.RegionEval, tc *tech.Tech, opt Options, ev *eval.Evaluator) (*ctree.Tree, map[int]int, error) {
	maxEdge := opt.MaxTrunkEdge
	if maxEdge <= 0 {
		maxEdge = 40
	}
	leaves := make([]dme.Leaf, len(regions))
	for i, r := range regions {
		// Upstream, a tap is its buffer's input cap; below it the region is
		// ready after the buffer's intrinsic delay plus the region-internal
		// worst path (which carries the drive term over the root load).
		leaves[i] = dme.Leaf{
			Pos:   r.Anchor,
			Cap:   tc.Buf.InputCap,
			Delay: tc.Buf.Intrinsic + sums[i].MaxDelay,
		}
	}
	top, taps, err := dme.TopRoute(rootPos, leaves, tc, dme.HierOptions{MaxTrunkEdge: maxEdge})
	if err != nil {
		return nil, nil, fmt.Errorf("core: stitch: %w", err)
	}
	bufferTopTree(top, tc)
	if err := balanceRegions(top, taps, sums, tc, ev); err != nil {
		return nil, nil, fmt.Errorf("core: stitch: %w", err)
	}
	return top, taps, nil
}

// bufferTopTree inserts node buffers on the top tree so no stage drives more
// than the clustering cap budget (0.6·MaxCap, the same limit leaf nets
// honor). One bottom-up postorder pass: a node whose unshielded subtree load
// exceeds the limit gets a buffer, shielding it from its parent's stage. Tap
// nodes are already buffered by construction. Deterministic: postorder over
// a fixed tree, and buffers are only ever added — re-running after the
// balance pass grows edge lengths re-checks the invariant incrementally.
// Returns the number of buffers added.
func bufferTopTree(top *ctree.Tree, tc *tech.Tech) int {
	front, buf := tc.Front(), tc.Buf
	limit := 0.6 * buf.MaxCap
	added := 0
	sub := make([]float64, top.Len())
	top.PostOrder(func(id int) {
		n := &top.Nodes[id]
		load := 0.0
		for _, c := range n.Children {
			load += front.UnitCap * top.EdgeLen(c)
			if top.Nodes[c].BufferAtNode {
				load += buf.InputCap
			} else {
				load += sub[c]
			}
		}
		sub[id] = load
		if id != top.Root() && !n.BufferAtNode && load > limit {
			n.BufferAtNode = true
			added++
		}
	})
	return added
}

// balanceRegions aligns the regions' worst sink delays by snaking the tap
// edges: the slowest region sets the target, every other tap edge gets the
// detour wirelength whose Elmore delay closes its gap. Adding wire to a tap
// edge slows its own region through the full upstream stage resistance (the
// new cap is seen by every resistance between the stage driver and the tap)
// and also shifts regions sharing those resistances, so the pass iterates
// with hierarchically composed arrivals — O(top tree) per iteration, regions
// never re-walked — until the residual misalignment is negligible. Each
// iteration re-runs the cap-legality buffering: detour wire adds stage cap,
// and a stage pushed past the budget gets a shielding buffer, whose delay
// the next iteration's arrivals absorb.
func balanceRegions(top *ctree.Tree, taps map[int]int, sums []*eval.RegionEval, tc *tech.Tech, ev *eval.Evaluator) error {
	front, buf := tc.Front(), tc.Buf
	r, c := front.UnitRes, front.UnitCap
	tapOf := make([]int, len(sums))
	for id, ri := range taps {
		tapOf[ri] = id
	}
	const (
		maxIter = 24
		tolPS   = 1e-6
	)
	// Stage resistance from each node's driver to the node's arrival
	// point. Only tap PARENTS are consumed below; recomputed per iteration
	// because the buffering pass can open new stages.
	racc := make([]float64, top.Len())
	for iter := 0; iter < maxIter; iter++ {
		top.PreOrder(func(id int) {
			n := &top.Nodes[id]
			if id == top.Root() {
				racc[id] = buf.DriveRes // root source resistance
			} else {
				racc[id] = racc[n.Parent] + r*top.EdgeLen(id)
			}
			if n.BufferAtNode {
				// A buffer opens a new stage; cap added below it is driven
				// by its output resistance.
				racc[id] = buf.DriveRes
			}
		})
		arrivals, err := ev.TopDelays(top, taps, sums)
		if err != nil {
			return err
		}
		target := math.Inf(-1)
		for ri := range sums {
			target = math.Max(target, arrivals[ri]+sums[ri].MaxDelay)
		}
		worst := 0.0
		for ri := range sums {
			gap := target - (arrivals[ri] + sums[ri].MaxDelay)
			worst = math.Max(worst, gap)
			if gap <= tolPS {
				continue
			}
			// First-order exact delay of e extra µm on the tap edge:
			//   Δd(e) = R·c·e + r·e·(c·(L+e) + c·L + K)
			// with R the upstream stage resistance, L the current edge
			// length and K the tap buffer's input cap. Solve the quadratic
			// r·c·e² + (R·c + r·(2·c·L + K))·e − gap = 0 for e ≥ 0.
			id := tapOf[ri]
			L := top.EdgeLen(id)
			R := racc[top.Nodes[id].Parent]
			b := R*c + r*(2*c*L+buf.InputCap)
			e := (-b + math.Sqrt(b*b+4*r*c*gap)) / (2 * r * c)
			if e > 0 {
				top.Nodes[id].SnakeExtra += e
			}
		}
		added := bufferTopTree(top, tc)
		if worst <= tolPS && added == 0 {
			return nil
		}
	}
	return nil
}

// graftRegions deep-copies every region tree under its tap node, remapping
// sink indices back to the original placement and offsetting cluster
// indices so they stay unique in the merged tree. The region root collapses
// into the tap; a region root that itself carries a node buffer keeps it on
// a zero-length child so the merged RC network matches the region-local one
// element for element.
func graftRegions(top *ctree.Tree, taps map[int]int, trees []*ctree.Tree, regions []partition.Region) (*ctree.Tree, error) {
	// The final size is known up front: every region node grafts exactly
	// once (plus at most one buffer carrier per region root). Pre-sizing
	// keeps the million-node lane from append-doubling through ~2x its
	// final footprint in zero+copy traffic.
	total := top.Len() + len(regions)
	for _, rt := range trees {
		total += rt.Len()
	}
	merged := top.CloneSized(total)
	clusterBase := 0
	// Graft in region ID order for a deterministic node numbering.
	tapOf := make([]int, len(regions))
	for id, ri := range taps {
		tapOf[ri] = id
	}
	for ri, rt := range trees {
		tap := tapOf[ri]
		rootID := rt.Root()
		idMap := make([]int, rt.Len())
		idMap[rootID] = tap
		if rt.Nodes[rootID].BufferAtNode {
			b := merged.Add(tap, ctree.KindSteiner, rt.Nodes[rootID].Pos)
			merged.Nodes[b].BufferAtNode = true
			idMap[rootID] = b
		}
		maxCluster := -1
		var graftErr error
		// PreOrder guarantees parents map before children even after edge
		// splitting re-parented nodes (indices alone are not top-down).
		rt.PreOrder(func(i int) {
			if i == rootID || graftErr != nil {
				return
			}
			n := &rt.Nodes[i]
			parent := idMap[n.Parent]
			var id int
			switch n.Kind {
			case ctree.KindSink:
				if n.SinkIdx < 0 || n.SinkIdx >= len(regions[ri].Sinks) {
					graftErr = fmt.Errorf("core: graft: region %d sink index %d out of range", ri, n.SinkIdx)
					return
				}
				id = merged.AddSink(parent, n.Pos, regions[ri].Sinks[n.SinkIdx])
			case ctree.KindCentroid:
				id = merged.AddCentroid(parent, n.Pos, clusterBase+n.ClusterIdx)
				if n.ClusterIdx > maxCluster {
					maxCluster = n.ClusterIdx
				}
			case ctree.KindSteiner:
				id = merged.Add(parent, ctree.KindSteiner, n.Pos)
			default:
				graftErr = fmt.Errorf("core: graft: region %d has nested root node %d", ri, i)
				return
			}
			// The graft preserves fan-out exactly, so reserve it: sink
			// appends under wide centroids then stay inside the carved
			// block instead of re-growing the child slice.
			merged.ReserveChildren(id, len(n.Children))
			m := &merged.Nodes[id]
			m.Wiring = n.Wiring
			m.SnakeExtra = n.SnakeExtra
			m.BufferAtNode = n.BufferAtNode
			idMap[i] = id
		})
		if graftErr != nil {
			return nil, graftErr
		}
		clusterBase += maxCluster + 1
	}
	return merged, nil
}

// signoffCorners runs the multi-corner evaluation on a finished outcome.
func signoffCorners(ctx context.Context, out *Outcome, tc *tech.Tech, opt Options, emit func(Phase, bool, time.Duration)) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	emit(PhaseCorners, false, 0)
	t4 := time.Now()
	copt := corner.Options{Workers: opt.Workers}
	if opt.Progress != nil {
		copt.OnCorner = func(done, total int) {
			opt.Progress(Progress{Phase: PhaseCorners, Point: done, Total: total})
		}
	}
	rep, err := corner.Evaluate(ctx, out.Tree, tc, opt.Corners, copt)
	if err != nil {
		return fmt.Errorf("core: corners: %w", err)
	}
	out.Corners = rep
	out.CornersTime = time.Since(t4)
	emit(PhaseCorners, true, out.CornersTime)
	return nil
}
