package core

import (
	"context"
	"errors"
	"testing"

	"dscts/internal/bench"
	"dscts/internal/tech"
)

// c4 synthesizes the smallest Table II design for end-to-end tests.
func c4Placement(t *testing.T) *bench.Placement {
	t.Helper()
	d, err := bench.ByID("C4")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSynthesizeDoubleSideEndToEnd(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	m := out.Metrics
	if m.Latency <= 0 || m.Skew < 0 || m.Buffers <= 0 {
		t.Fatalf("implausible metrics: %+v", m)
	}
	if m.NTSVs == 0 {
		t.Fatal("double-side flow should insert nTSVs")
	}
	if len(m.SinkDelays) != len(p.Sinks) {
		t.Fatalf("%d sink delays for %d sinks", len(m.SinkDelays), len(p.Sinks))
	}
	if out.RouteTime <= 0 || out.InsertTime <= 0 || out.TotalTime <= 0 {
		t.Error("phase runtimes not recorded")
	}
}

func TestSynthesizeSingleSideHasNoTSVs(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{Mode: SingleSide})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.NTSVs != 0 {
		t.Fatalf("single-side flow used %d nTSVs", out.Metrics.NTSVs)
	}
}

// Table III's central claim at benchmark scale: double-side latency beats
// single-side latency on the same placement.
func TestDoubleSideBeatsSingleSide(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	ds, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Synthesize(p.Root, p.Sinks, tc, Options{Mode: SingleSide})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Metrics.Latency >= ss.Metrics.Latency {
		t.Fatalf("double-side %.1f ps not better than single-side %.1f ps",
			ds.Metrics.Latency, ss.Metrics.Latency)
	}
	t.Logf("double %.1f ps (%d buf, %d tsv) vs single %.1f ps (%d buf)",
		ds.Metrics.Latency, ds.Metrics.Buffers, ds.Metrics.NTSVs,
		ss.Metrics.Latency, ss.Metrics.Buffers)
}

func TestSynthesizeFanoutThresholdRestrictsTSVs(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	free, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Synthesize(p.Root, p.Sinks, tc, Options{FanoutThreshold: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 500 grants full mode only to the top trunk (C4 has 1056
	// sinks): strictly fewer nTSVs than the unconstrained flow.
	if tight.Metrics.NTSVs >= free.Metrics.NTSVs {
		t.Fatalf("threshold 500 gave %d nTSVs vs %d unconstrained",
			tight.Metrics.NTSVs, free.Metrics.NTSVs)
	}
	if tight.Metrics.NTSVs == 0 {
		t.Fatal("top trunk should still use nTSVs")
	}
}

func TestSynthesizeSkipRefine(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{SkipRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Refine != nil {
		t.Fatal("refine report present despite SkipRefine")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	if _, err := Synthesize(p.Root, nil, tc, Options{}); err == nil {
		t.Error("no sinks should error")
	}
	if _, err := Synthesize(p.Root, p.Sinks, nil, Options{}); err == nil {
		t.Error("nil tech should error")
	}
	bad := *tc
	bad.MaxFanout = 0
	if _, err := Synthesize(p.Root, p.Sinks, &bad, Options{}); err == nil {
		t.Error("invalid tech should error")
	}
}

func TestSynthesizeFlatDMEAblation(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{UseFlatDME: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Latency <= 0 {
		t.Fatal("flat DME flow failed")
	}
}

// TestSynthesizeContextCancel cancels at every phase boundary (driven by
// the progress callback) and checks the flow stops with a wrapped
// context.Canceled instead of returning a partial Outcome.
func TestSynthesizeContextCancel(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	// Pre-cancelled context: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SynthesizeContext(ctx, p.Root, p.Sinks, tc, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v", err)
	}
	// Cancel as each phase starts; later phases must never run.
	for _, stopAt := range []Phase{PhaseRoute, PhaseInsert, PhaseRefine} {
		ctx, cancel := context.WithCancel(context.Background())
		var after []Phase
		opt := Options{Progress: func(pr Progress) {
			if pr.Phase == stopAt && !pr.Done {
				cancel()
			}
			if pr.Done {
				after = append(after, pr.Phase)
			}
		}}
		out, err := SynthesizeContext(ctx, p.Root, p.Sinks, tc, opt)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel at %s: err = %v", stopAt, err)
		}
		if out != nil {
			t.Fatalf("cancel at %s: got a partial outcome", stopAt)
		}
		for _, ph := range after {
			if ph == PhaseEval {
				t.Fatalf("cancel at %s: evaluation still ran", stopAt)
			}
		}
	}
}

// TestProgressEvents checks the phase event sequence of a full run: each
// phase emits start then done, in flow order, ending with evaluation.
func TestProgressEvents(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	type ev struct {
		ph   Phase
		done bool
	}
	var got []ev
	_, err := Synthesize(p.Root, p.Sinks, tc, Options{Progress: func(pr Progress) {
		got = append(got, ev{pr.Phase, pr.Done})
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := []ev{
		{PhaseRoute, false}, {PhaseRoute, true},
		{PhaseInsert, false}, {PhaseInsert, true},
		{PhaseRefine, false}, {PhaseRefine, true},
		{PhaseEval, false}, {PhaseEval, true},
	}
	if len(got) != len(want) {
		t.Fatalf("events %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSynthesizeKeepRootSet(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{KeepRootSet: true, SkipRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.DP.Candidates) < 2 {
		t.Fatalf("expected a diverse root set, got %d candidates", len(out.DP.Candidates))
	}
}
