package core

import (
	"testing"

	"dscts/internal/bench"
	"dscts/internal/tech"
)

// c4 synthesizes the smallest Table II design for end-to-end tests.
func c4Placement(t *testing.T) *bench.Placement {
	t.Helper()
	d, err := bench.ByID("C4")
	if err != nil {
		t.Fatal(err)
	}
	return bench.Generate(d, 1)
}

func TestSynthesizeDoubleSideEndToEnd(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	m := out.Metrics
	if m.Latency <= 0 || m.Skew < 0 || m.Buffers <= 0 {
		t.Fatalf("implausible metrics: %+v", m)
	}
	if m.NTSVs == 0 {
		t.Fatal("double-side flow should insert nTSVs")
	}
	if len(m.SinkDelays) != len(p.Sinks) {
		t.Fatalf("%d sink delays for %d sinks", len(m.SinkDelays), len(p.Sinks))
	}
	if out.RouteTime <= 0 || out.InsertTime <= 0 || out.TotalTime <= 0 {
		t.Error("phase runtimes not recorded")
	}
}

func TestSynthesizeSingleSideHasNoTSVs(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{Mode: SingleSide})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.NTSVs != 0 {
		t.Fatalf("single-side flow used %d nTSVs", out.Metrics.NTSVs)
	}
}

// Table III's central claim at benchmark scale: double-side latency beats
// single-side latency on the same placement.
func TestDoubleSideBeatsSingleSide(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	ds, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Synthesize(p.Root, p.Sinks, tc, Options{Mode: SingleSide})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Metrics.Latency >= ss.Metrics.Latency {
		t.Fatalf("double-side %.1f ps not better than single-side %.1f ps",
			ds.Metrics.Latency, ss.Metrics.Latency)
	}
	t.Logf("double %.1f ps (%d buf, %d tsv) vs single %.1f ps (%d buf)",
		ds.Metrics.Latency, ds.Metrics.Buffers, ds.Metrics.NTSVs,
		ss.Metrics.Latency, ss.Metrics.Buffers)
}

func TestSynthesizeFanoutThresholdRestrictsTSVs(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	free, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Synthesize(p.Root, p.Sinks, tc, Options{FanoutThreshold: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 500 grants full mode only to the top trunk (C4 has 1056
	// sinks): strictly fewer nTSVs than the unconstrained flow.
	if tight.Metrics.NTSVs >= free.Metrics.NTSVs {
		t.Fatalf("threshold 500 gave %d nTSVs vs %d unconstrained",
			tight.Metrics.NTSVs, free.Metrics.NTSVs)
	}
	if tight.Metrics.NTSVs == 0 {
		t.Fatal("top trunk should still use nTSVs")
	}
}

func TestSynthesizeSkipRefine(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{SkipRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Refine != nil {
		t.Fatal("refine report present despite SkipRefine")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	if _, err := Synthesize(p.Root, nil, tc, Options{}); err == nil {
		t.Error("no sinks should error")
	}
	if _, err := Synthesize(p.Root, p.Sinks, nil, Options{}); err == nil {
		t.Error("nil tech should error")
	}
	bad := *tc
	bad.MaxFanout = 0
	if _, err := Synthesize(p.Root, p.Sinks, &bad, Options{}); err == nil {
		t.Error("invalid tech should error")
	}
}

func TestSynthesizeFlatDMEAblation(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{UseFlatDME: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Latency <= 0 {
		t.Fatal("flat DME flow failed")
	}
}

func TestSynthesizeKeepRootSet(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{KeepRootSet: true, SkipRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.DP.Candidates) < 2 {
		t.Fatalf("expected a diverse root set, got %d candidates", len(out.DP.Candidates))
	}
}
