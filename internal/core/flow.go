// Package core orchestrates the paper's full double-side CTS flow (Fig. 4):
// hierarchical clock routing (dual-level clustering + hierarchical DME),
// concurrent buffer & nTSV insertion by multi-objective DP, and skew
// refinement, returning the annotated clock tree together with evaluated
// metrics and per-phase runtimes.
package core

import (
	"context"
	"fmt"
	"time"

	"dscts/internal/arena"
	"dscts/internal/cluster"
	"dscts/internal/corner"
	"dscts/internal/ctree"
	"dscts/internal/eval"
	"dscts/internal/fault"
	"dscts/internal/geom"
	"dscts/internal/insert"
	"dscts/internal/partition"
	"dscts/internal/refine"
	"dscts/internal/tech"
)

// SideMode selects the insertion design space.
type SideMode int

const (
	// DoubleSide allows all patterns (full mode), optionally restricted
	// per-node by FanoutThreshold.
	DoubleSide SideMode = iota
	// SingleSide forbids nTSVs everywhere: the flow degenerates to a
	// conventional front-side buffered CTS ("Our Buffered Clock Tree" in
	// Table III).
	SingleSide
)

// Phase names a stage of the flow, as reported through Options.Progress.
type Phase string

// The flow's phases, in execution order. PhaseSweep is emitted by DSE
// sweeps (one event per completed sweep point) rather than by Synthesize.
const (
	PhaseRoute   Phase = "route"
	PhaseInsert  Phase = "insert"
	PhaseRefine  Phase = "refine"
	PhaseEval    Phase = "eval"
	PhaseSweep   Phase = "sweep"
	PhaseCorners Phase = "corners"
	// PhasePartition covers the partition-parallel pipeline's region work:
	// the start event is the die split, per-region completions follow as
	// Point/Total events, and the done event closes the phase.
	PhasePartition Phase = "partition"
	// PhaseStitch is the top-tree merge + cross-region skew balancing of
	// the partitioned pipeline.
	PhaseStitch Phase = "stitch"
	// PhaseECO covers incremental re-synthesis (SynthesizeECO): the start
	// event opens the dirty-set re-run, Point/Total events follow per
	// re-synthesized scope (region or leaf cluster), and the done event
	// closes it. Stitch/eval/corners phases still follow as usual.
	PhaseECO Phase = "eco"
)

// Progress is one flow progress event. For synthesis phases, Done marks the
// end of the phase and Elapsed its runtime. For PhaseSweep events Point and
// Total carry the completed/total sweep-point counts.
type Progress struct {
	Phase   Phase
	Done    bool
	Elapsed time.Duration
	Point   int
	Total   int
}

// ProgressFunc observes flow progress. Callbacks may be invoked from
// multiple goroutines (DSE sweeps report points concurrently), so
// implementations must be safe for concurrent use. They should return
// quickly: the flow calls them inline.
type ProgressFunc func(Progress)

// Options configures Synthesize.
type Options struct {
	// Dual carries the clustering sizes; zero value uses the paper's
	// Hc=3000, Lc=30. Cap-aware splitting is always installed from the
	// technology's buffer max load.
	Dual cluster.DualOptions
	// MaxTrunkEdge subdivides trunk edges for insertion (µm). Zero uses
	// a default derived from the buffer max load.
	MaxTrunkEdge float64
	// Mode selects double- or single-side synthesis.
	Mode SideMode
	// FanoutThreshold, when positive and Mode is DoubleSide, configures
	// the heterogeneous DP of Sec. III-E: edges driving at least this
	// many sinks get full mode (nTSVs allowed); smaller subtrees are
	// restricted to intra-side mode. Sweeping the threshold from high to
	// low interpolates from "back-side trunk only" to the all-full-mode
	// flow of Table III. NOTE: the paper's prose states the opposite
	// assignment, which would deny nTSVs exactly where [2]/[7] show they
	// pay off and would contradict Fig. 12; see EXPERIMENTS.md.
	FanoutThreshold int
	// Alpha, Beta, Gamma are the MOES weights; zeros use 1, 10, 1.
	Alpha, Beta, Gamma float64
	// SelectMinLatency picks the minimum-latency root solution instead of
	// MOES (Fig. 10 ablation).
	SelectMinLatency bool
	// KeepRootSet retains the root candidate set (Fig. 10).
	KeepRootSet bool
	// DiversePruning widens DP pruning with the resource axis so the root
	// set exposes buffer/nTSV trade-offs (Fig. 10 study); see
	// insert.Config.DiversePruning.
	DiversePruning bool
	// MaxPerSide caps the DP solution set per side type (0 = default 48);
	// see insert.Config.MaxPerSide.
	MaxPerSide int
	// SkipRefine disables skew refinement (Fig. 11 ablation).
	SkipRefine bool
	// Refine carries the skew-refinement knobs; zero value uses the
	// paper's p=23, m=33.
	Refine refine.Params
	// UseFlatDME replaces hierarchical DME with matching-based DME
	// (Fig. 5(c) ablation).
	UseFlatDME bool
	// Workers bounds the concurrency of every parallel phase (clustering,
	// DP insertion, skew refinement; DSE sweeps also consult it). 0 or
	// negative means one worker per CPU. The flow is deterministic in the
	// worker count: Workers=1 and Workers=N produce identical trees and
	// Metrics — parallel loops only distribute pure per-item work and all
	// floating-point reductions run in a fixed order.
	Workers int
	// Partition configures the partition-parallel mega-scale pipeline
	// (DESIGN.md §3): with MaxSinks > 0 and more sinks than that, the die
	// is split into capacity-bounded regions, each region runs the full
	// clustering→DME→insertion→refinement stack independently on the
	// shared worker budget, and a stitch stage merges the region roots
	// under a buffered top tree with cross-region skew balancing. The
	// zero value — and any placement that fits a single region — runs the
	// monolithic flow, bit-identically to a build without this option.
	Partition partition.Options
	// Corners, when non-empty, runs multi-corner sign-off after the flow:
	// the finished tree is re-evaluated under each PVT corner (fanned out
	// on the same worker budget) and Outcome.Corners carries the
	// per-corner Metrics plus the cross-corner summary. Corners never
	// affect synthesis itself — the tree is built at the typical corner —
	// and the per-corner results are deterministic in both the worker
	// count and the corner order (merge order follows this slice).
	Corners []corner.Corner
	// RetainECO asks the flow to keep the incremental-re-synthesis state on
	// the outcome (Outcome.Retained): the input placement plus, for a
	// partitioned run, the per-region trees and summaries. SynthesizeECO
	// requires it. Retention only extends lifetimes — nothing is copied —
	// but at mega scale the region trees it keeps alive roughly double the
	// resident tree memory, so it is opt-in.
	RetainECO bool
	// Progress, when non-nil, receives one event at the start and end of
	// each phase (per completed point in DSE sweeps, and per completed
	// corner in multi-corner sign-off). It never affects results. Must be
	// safe for concurrent use; see ProgressFunc.
	Progress ProgressFunc
	// Faults is the deterministic fault-injection registry (internal/fault)
	// consulted at the flow's phase boundaries (core.route/insert/refine/
	// eval/stitch/eco) so tests and the chaos soak can script failures
	// reproducibly. nil — the default — is a zero-cost no-op. Like Progress
	// it is a test/scheduling hook, never part of the result identity: a
	// run that completes under injection is bit-identical to one without.
	Faults *fault.Registry
	// RegionExec, when non-nil, executes the regions of a partitioned run
	// instead of the built-in local path — the cluster-mode seam that lets
	// a daemon dispatch regions to peers (or a steal queue) and splice the
	// results into the local stitch. The executor must be result-equivalent
	// to RunRegion for the same inputs; the engine consumes results in
	// region-ID order regardless of completion order, so a conforming
	// executor preserves bit-identical Metrics. With it set, the outer
	// region fan-out is not capped at the core count (the executor owns
	// scheduling; the pipeline's goroutines just wait on it). Ignored by
	// the monolithic flow and by ECO re-synthesis. Like Progress, it is a
	// scheduling hook, never part of the result identity.
	RegionExec RegionExecFunc
	// Arena is the job-owned scratch arena every phase draws its working
	// memory from (clustering lanes, DP generation buffers, RC networks).
	// nil falls back to per-package pools. Partitioned runs ignore it for
	// the per-region stacks — concurrent regions draw right-sized jobs
	// from an internal size-bucketed pool instead. Purely a memory-reuse
	// hook: results are bit-identical with any value, including nil.
	Arena *arena.Job
}

// Outcome is the result of a synthesis run.
type Outcome struct {
	Tree    *ctree.Tree
	Metrics *eval.Metrics
	DP      *insert.Result
	Refine  *refine.Report
	Dual    *cluster.Dual
	// Corners is the multi-corner sign-off report (nil unless
	// Options.Corners was set).
	Corners *corner.Report
	// Regions carries per-region statistics of a partitioned run (nil for
	// the monolithic flow), in region ID order.
	Regions []RegionStat
	// ECO summarizes an incremental run (nil for full synthesis).
	ECO *ECOStats
	// Retained is the incremental-re-synthesis state consumed by
	// SynthesizeECO; nil unless Options.RetainECO was set.
	Retained *ECOState

	// Phase runtimes. For a partitioned run RouteTime/InsertTime/
	// RefineTime sum the per-region phase times (total work, not
	// wall-clock); PartitionTime and StitchTime are wall-clock. ECOTime is
	// the wall-clock of an incremental run's dirty-set re-synthesis span.
	RouteTime     time.Duration
	InsertTime    time.Duration
	RefineTime    time.Duration
	PartitionTime time.Duration
	StitchTime    time.Duration
	CornersTime   time.Duration
	ECOTime       time.Duration
	TotalTime     time.Duration
}

// Synthesize runs the full flow on the given clock root and sink placement.
func Synthesize(rootPos geom.Point, sinks []geom.Point, tc *tech.Tech, opt Options) (*Outcome, error) {
	return SynthesizeContext(context.Background(), rootPos, sinks, tc, opt)
}

// SynthesizeContext is Synthesize with cancellation: the flow checks ctx
// between phases and the long-running inner loops (the DP ready-queue,
// refinement trial batches) observe it mid-phase, so a queued or running
// synthesis stops promptly — without leaking goroutines — when ctx is
// cancelled. On cancellation the returned error wraps ctx.Err().
// Cancellation never corrupts results: a run either returns a complete
// Outcome or an error, and a run that completes is bit-identical to an
// uncancellable one.
func SynthesizeContext(ctx context.Context, rootPos geom.Point, sinks []geom.Point, tc *tech.Tech, opt Options) (*Outcome, error) {
	if tc == nil {
		return nil, fmt.Errorf("core: nil tech")
	}
	if err := tc.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(sinks) == 0 {
		return nil, fmt.Errorf("core: no sinks")
	}
	// Reject a bad corner list before spending the whole synthesis on it.
	if len(opt.Corners) > 0 {
		if err := corner.ValidateSet(opt.Corners); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if err := opt.Partition.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	start := time.Now()

	// The partitioned pipeline takes over only when there is actually more
	// than one region; everything at or below the capacity runs the
	// monolithic flow, so Partition.MaxSinks=0 (or a single region) is
	// bit-identical to a build without the option.
	if opt.Partition.Enabled() && len(sinks) > opt.Partition.MaxSinks {
		return synthesizePartitioned(ctx, rootPos, sinks, tc, opt, start)
	}

	out := &Outcome{}
	emit := func(ph Phase, done bool, elapsed time.Duration) {
		if opt.Progress != nil {
			opt.Progress(Progress{Phase: ph, Done: done, Elapsed: elapsed})
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	st, err := runStages(ctx, rootPos, sinks, tc, opt, opt.Workers, emit)
	if err != nil {
		return nil, err
	}
	out.Tree, out.Dual, out.DP, out.Refine = st.tree, st.dual, st.dp, st.refine
	out.RouteTime, out.InsertTime, out.RefineTime = st.routeTime, st.insertTime, st.refineTime

	if err := opt.Faults.Check(ctx, fault.PointEval); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	emit(PhaseEval, false, 0)
	t3 := time.Now()
	if st.refine != nil {
		// Refinement's exit report already evaluated exactly this tree with
		// an identical evaluator (eval.New(tc, eval.Elmore) on the final
		// buffered tree), so its After IS the flow's final metrics — reusing
		// it skips a duplicate full evaluation, bit-identically.
		m := st.refine.After
		out.Metrics = &m
	} else {
		m, err := eval.New(tc, eval.Elmore).EvaluateIn(out.Tree, opt.Arena)
		if err != nil {
			return nil, fmt.Errorf("core: evaluation: %w", err)
		}
		out.Metrics = m
	}
	emit(PhaseEval, true, time.Since(t3))

	// Multi-corner sign-off: re-evaluate the finished tree per PVT corner.
	if len(opt.Corners) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		emit(PhaseCorners, false, 0)
		t4 := time.Now()
		copt := corner.Options{Workers: opt.Workers}
		if opt.Progress != nil {
			copt.OnCorner = func(done, total int) {
				opt.Progress(Progress{Phase: PhaseCorners, Point: done, Total: total})
			}
		}
		rep, err := corner.Evaluate(ctx, out.Tree, tc, opt.Corners, copt)
		if err != nil {
			return nil, fmt.Errorf("core: corners: %w", err)
		}
		out.Corners = rep
		out.CornersTime = time.Since(t4)
		emit(PhaseCorners, true, out.CornersTime)
	}
	if opt.RetainECO {
		out.Retained = &ECOState{
			Root: rootPos, Sinks: sinks, Tech: tc, Opt: retainedOptions(opt),
			arena: retainedArena(opt, len(sinks)),
		}
	}
	out.TotalTime = time.Since(start)
	return out, nil
}

// retainedArena picks the scratch arena an ECOState carries forward: the
// run's own job when it had one, else a fresh job the first chained ECO will
// warm up. Retaining an arena only extends scratch lifetimes; it never
// aliases result memory (see the arena package contract).
func retainedArena(opt Options, sinks int) *arena.Job {
	if opt.Arena != nil {
		return opt.Arena
	}
	return arena.NewJob(sinks)
}
