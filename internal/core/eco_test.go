package core

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"dscts/internal/bench"
	"dscts/internal/corner"
	"dscts/internal/eco"
	"dscts/internal/geom"
	"dscts/internal/partition"
	"dscts/internal/tech"
)

// ecoPlacement generates a benchmark placement for the ECO suite.
func ecoPlacement(t *testing.T, design string) *bench.Placement {
	t.Helper()
	d, err := bench.ByID(design)
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// localizedDelta builds the realistic ECO shape — a spatially local edit:
// the `count` sinks nearest to an anchor sink are touched, 3 of 4 moved by
// a small offset, every 4th removed, plus one added sink near the anchor.
func localizedDelta(sinks []geom.Point, anchor, count int) eco.Delta {
	type ds struct {
		idx  int
		dist float64
	}
	order := make([]ds, len(sinks))
	for i, p := range sinks {
		order[i] = ds{i, p.Dist(sinks[anchor])}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].dist != order[b].dist {
			return order[a].dist < order[b].dist
		}
		return order[a].idx < order[b].idx
	})
	if count > len(order) {
		count = len(order)
	}
	var d eco.Delta
	for k := 0; k < count; k++ {
		i := order[k].idx
		if k%4 == 3 {
			d.Remove = append(d.Remove, i)
			continue
		}
		off := float64(k%5) - 2 // −2..2 µm, deterministic
		d.Move = append(d.Move, eco.Move{Sink: i, To: geom.Pt(sinks[i].X+off, sinks[i].Y-off/2)})
	}
	d.Add = append(d.Add, geom.Pt(sinks[anchor].X+3, sinks[anchor].Y+3))
	return d
}

func sameMetrics(t *testing.T, label string, a, b *Outcome) {
	t.Helper()
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("%s: metrics differ:\n%+v\nvs\n%+v", label, a.Metrics, b.Metrics)
	}
}

func sameTrees(t *testing.T, label string, a, b *Outcome) {
	t.Helper()
	if !reflect.DeepEqual(a.Tree.Nodes, b.Tree.Nodes) {
		t.Fatalf("%s: trees differ (%d vs %d nodes)", label, a.Tree.Len(), b.Tree.Len())
	}
}

// TestECOEmptyDeltaBitIdentity: an empty delta reproduces the prior outcome
// bit-identically — metrics, per-sink delays and tree — for both pipelines.
func TestECOEmptyDeltaBitIdentity(t *testing.T) {
	cases := []struct {
		name   string
		design string
		opt    Options
	}{
		{"monolithic", "C4", Options{RetainECO: true}},
		{"partitioned", "C5", Options{RetainECO: true, Partition: partition.Options{MaxSinks: 600}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := ecoPlacement(t, tc.design)
			prev, err := Synthesize(p.Root, p.Sinks, tech.ASAP7(), tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if prev.Retained == nil {
				t.Fatal("RetainECO left no state")
			}
			out, err := SynthesizeECO(prev, eco.Delta{}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sameMetrics(t, tc.name, prev, out)
			sameTrees(t, tc.name, prev, out)
			if out.ECO == nil || out.ECO.DirtyScopes != 0 || out.ECO.ReusedSinks != len(p.Sinks) {
				t.Fatalf("eco stats %+v", out.ECO)
			}
		})
	}
}

// TestECOSelfMoveIdentityPartitioned: moving a sink onto its own position
// dirties its region, and the re-synthesized region must land bit-identical
// to the retained one — the strongest determinism check of the reuse path,
// because it runs the full dirty-region machinery with unchanged inputs.
func TestECOSelfMoveIdentityPartitioned(t *testing.T) {
	p := ecoPlacement(t, "C5")
	opt := Options{RetainECO: true, Partition: partition.Options{MaxSinks: 600, Macros: p.Macros}}
	prev, err := Synthesize(p.Root, p.Sinks, tech.ASAP7(), opt)
	if err != nil {
		t.Fatal(err)
	}
	d := eco.Delta{Move: []eco.Move{{Sink: 42, To: p.Sinks[42]}}}
	out, err := SynthesizeECO(prev, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ECO.DirtyScopes != 1 {
		t.Fatalf("self-move dirtied %d regions", out.ECO.DirtyScopes)
	}
	sameMetrics(t, "self-move", prev, out)
	sameTrees(t, "self-move", prev, out)
}

// relDiff is |a-b| / max(|a|,|b|).
func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// Pinned equivalence tolerances for ECO vs full re-synthesis. They are
// loose by design: a full run re-derives clustering and partitioning from
// the post-delta placement while ECO preserves the retained structure, so
// the two trees differ — but their quality must stay in the same regime.
const (
	ecoTolLatency = 0.15 // relative
	ecoTolWL      = 0.10 // relative
	ecoTolBuffers = 0.15 // relative
	// Skew is the touchiest metric (it is a max-min of thousands of paths);
	// ECO skew must stay within a factor of the full run's plus a small
	// absolute allowance.
	ecoSkewFactor = 2.0
	ecoSkewSlack  = 15.0 // ps
)

// TestECOVsFullEquivalence: on every Table II design, a ~1% localized delta
// applied incrementally must match a full re-synthesis of the post-delta
// placement within the pinned tolerances, and the spliced tree must be
// structurally valid with exactly the post-delta sink set.
func TestECOVsFullEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full C1..C5 synthesis sweep")
	}
	cases := []struct {
		design string
		part   int // 0 = monolithic
	}{
		{"C1", 1200},
		{"C2", 4000},
		{"C3", 0},
		{"C4", 0},
		{"C5", 600},
	}
	for _, tc := range cases {
		t.Run(tc.design, func(t *testing.T) {
			p := ecoPlacement(t, tc.design)
			opt := Options{RetainECO: true}
			if tc.part > 0 {
				opt.Partition = partition.Options{MaxSinks: tc.part, Macros: p.Macros}
			}
			tcn := tech.ASAP7()
			prev, err := Synthesize(p.Root, p.Sinks, tcn, opt)
			if err != nil {
				t.Fatal(err)
			}
			d := localizedDelta(p.Sinks, len(p.Sinks)/3, len(p.Sinks)/100)
			out, err := SynthesizeECO(prev, d, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := out.Tree.Validate(); err != nil {
				t.Fatalf("spliced tree invalid: %v", err)
			}
			newSinks, _ := eco.Apply(p.Sinks, d)
			if got := len(out.Metrics.SinkDelays); got != len(newSinks) {
				t.Fatalf("eco outcome covers %d of %d sinks", got, len(newSinks))
			}
			full, err := Synthesize(p.Root, newSinks, tcn, opt)
			if err != nil {
				t.Fatal(err)
			}
			em, fm := out.Metrics, full.Metrics
			t.Logf("%s: eco lat %.2f skew %.2f wl %.0f buf %d | full lat %.2f skew %.2f wl %.0f buf %d | dirty %d/%d",
				tc.design, em.Latency, em.Skew, em.WL, em.Buffers,
				fm.Latency, fm.Skew, fm.WL, fm.Buffers, out.ECO.DirtyScopes, out.ECO.TotalScopes)
			if r := relDiff(em.Latency, fm.Latency); r > ecoTolLatency {
				t.Errorf("latency diverged %.1f%%: eco %.2f vs full %.2f", 100*r, em.Latency, fm.Latency)
			}
			if r := relDiff(em.WL, fm.WL); r > ecoTolWL {
				t.Errorf("wirelength diverged %.1f%%: eco %.0f vs full %.0f", 100*r, em.WL, fm.WL)
			}
			if r := relDiff(float64(em.Buffers), float64(fm.Buffers)); r > ecoTolBuffers {
				t.Errorf("buffers diverged %.1f%%: eco %d vs full %d", 100*r, em.Buffers, fm.Buffers)
			}
			if em.Skew > fm.Skew*ecoSkewFactor+ecoSkewSlack {
				t.Errorf("skew degraded: eco %.2f vs full %.2f ps", em.Skew, fm.Skew)
			}
			if out.ECO.DirtyScopes == 0 || out.ECO.DirtyScopes == out.ECO.TotalScopes {
				t.Errorf("degenerate dirty set %d/%d", out.ECO.DirtyScopes, out.ECO.TotalScopes)
			}
		})
	}
}

// TestECOWorkersDeterminism: the incremental path, like every other phase,
// must be bit-identical at Workers=1 and Workers=8.
func TestECOWorkersDeterminism(t *testing.T) {
	cases := []struct {
		name   string
		design string
		opt    Options
	}{
		{"monolithic", "C4", Options{RetainECO: true}},
		{"partitioned", "C5", Options{RetainECO: true, Partition: partition.Options{MaxSinks: 400}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := ecoPlacement(t, tc.design)
			prev, err := Synthesize(p.Root, p.Sinks, tech.ASAP7(), tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			d := localizedDelta(p.Sinks, len(p.Sinks)/2, len(p.Sinks)/50)
			one, err := SynthesizeECO(prev, d, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			eight, err := SynthesizeECO(prev, d, Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			sameMetrics(t, tc.name, one, eight)
			sameTrees(t, tc.name, one, eight)
		})
	}
}

// TestECOCornersOnlyDelta: a corner-set change re-runs sign-off on the
// retained tree without dirtying anything, and the per-corner results are
// bit-identical to a full synthesis that carried the corners from the start.
func TestECOCornersOnlyDelta(t *testing.T) {
	p := ecoPlacement(t, "C4")
	tcn := tech.ASAP7()
	prev, err := Synthesize(p.Root, p.Sinks, tcn, Options{RetainECO: true})
	if err != nil {
		t.Fatal(err)
	}
	if prev.Corners != nil {
		t.Fatal("base run unexpectedly carried corners")
	}
	cs := []corner.Corner{corner.Slow(), corner.Typ(), corner.Fast()}
	out, err := SynthesizeECO(prev, eco.Delta{SetCorners: cs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ECO.DirtyScopes != 0 {
		t.Fatalf("corner change dirtied %d scopes", out.ECO.DirtyScopes)
	}
	sameTrees(t, "corners-only", prev, out)
	want, err := Synthesize(p.Root, p.Sinks, tcn, Options{Corners: cs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Corners, want.Corners) {
		t.Fatalf("corner report differs from full run:\n%+v\nvs\n%+v", out.Corners.Summary, want.Corners.Summary)
	}
}

// TestECOAddOverflowResplits: piling adds into one region past its capacity
// re-cuts the region, keeps the partition valid, and the merged tree covers
// every post-delta sink.
func TestECOAddOverflowResplits(t *testing.T) {
	p := ecoPlacement(t, "C5")
	opt := Options{RetainECO: true, Partition: partition.Options{MaxSinks: 600, Macros: p.Macros}}
	prev, err := Synthesize(p.Root, p.Sinks, tech.ASAP7(), opt)
	if err != nil {
		t.Fatal(err)
	}
	before := len(prev.Regions)
	var d eco.Delta
	for i := 0; i < 250; i++ {
		d.Add = append(d.Add, geom.Pt(p.Sinks[0].X+float64(i%16), p.Sinks[0].Y+float64(i/16)))
	}
	out, err := SynthesizeECO(prev, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Regions) <= before {
		t.Fatalf("regions %d -> %d: overflow did not re-split", before, len(out.Regions))
	}
	if err := out.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(out.Metrics.SinkDelays); got != len(p.Sinks)+250 {
		t.Fatalf("outcome covers %d sinks, want %d", got, len(p.Sinks)+250)
	}
}

// TestECOClusterEmptied: removing a whole leaf cluster monolithically
// leaves a childless centroid behind and a consistent evaluation.
func TestECOClusterEmptied(t *testing.T) {
	p := ecoPlacement(t, "C4")
	prev, err := Synthesize(p.Root, p.Sinks, tech.ASAP7(), Options{RetainECO: true})
	if err != nil {
		t.Fatal(err)
	}
	clusterOf, _, _, err := leafClusters(prev.Tree, len(p.Sinks))
	if err != nil {
		t.Fatal(err)
	}
	var d eco.Delta
	for s, c := range clusterOf {
		if c == 0 {
			d.Remove = append(d.Remove, s)
		}
	}
	if len(d.Remove) == 0 {
		t.Fatal("cluster 0 has no sinks")
	}
	out, err := SynthesizeECO(prev, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(out.Metrics.SinkDelays); got != len(p.Sinks)-len(d.Remove) {
		t.Fatalf("outcome covers %d sinks, want %d", got, len(p.Sinks)-len(d.Remove))
	}
}

// TestECOChained: a second delta against an ECO outcome (RetainECO chained)
// keeps working and stays valid.
func TestECOChained(t *testing.T) {
	p := ecoPlacement(t, "C4")
	prev, err := Synthesize(p.Root, p.Sinks, tech.ASAP7(), Options{RetainECO: true})
	if err != nil {
		t.Fatal(err)
	}
	d1 := localizedDelta(p.Sinks, 10, 12)
	mid, err := SynthesizeECO(prev, d1, Options{RetainECO: true})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Retained == nil {
		t.Fatal("chained retention missing")
	}
	d2 := localizedDelta(mid.Retained.Sinks, len(mid.Retained.Sinks)-1, 8)
	out, err := SynthesizeECO(mid, d2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestECOErrorPaths: missing retained state and malformed deltas fail
// cleanly.
func TestECOErrorPaths(t *testing.T) {
	p := ecoPlacement(t, "C4")
	noState, err := Synthesize(p.Root, p.Sinks, tech.ASAP7(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SynthesizeECO(noState, eco.Delta{}, Options{}); err == nil {
		t.Fatal("expected error without retained state")
	}
	prev, err := Synthesize(p.Root, p.Sinks, tech.ASAP7(), Options{RetainECO: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SynthesizeECO(prev, eco.Delta{Remove: []int{len(p.Sinks)}}, Options{}); err == nil {
		t.Fatal("expected error for out-of-range removal")
	}
}
