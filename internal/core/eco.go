package core

// Incremental (ECO) re-synthesis: given a prior Outcome that retained its
// synthesis state (Options.RetainECO) and a Delta of sink edits, re-run only
// the dirty scopes — affected regions under partitioning, affected low-level
// clusters monolithically — through the same runStages pipeline, splice the
// fresh subtrees into the retained tree, and re-evaluate incrementally
// (hierarchical composition for regions, one flat what-if pass
// monolithically). DESIGN.md §4 states the dirty-set semantics and the
// splice contract; the correctness contract is:
//
//   - an empty delta reproduces the prior outcome bit-identically;
//   - results are deterministic in the worker count (Workers=1 ≡ Workers=N);
//   - ECO metrics track a full re-synthesis of the post-delta placement
//     within the pinned tolerances of TestECOVsFullEquivalence — exact
//     equality is impossible by construction, because a full run re-derives
//     the partition and clustering from the new placement while ECO
//     preserves the retained structure.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"dscts/internal/arena"
	"dscts/internal/ctree"
	"dscts/internal/eco"
	"dscts/internal/eval"
	"dscts/internal/fault"
	"dscts/internal/geom"
	"dscts/internal/insert"
	"dscts/internal/par"
	"dscts/internal/partition"
	"dscts/internal/tech"
)

// ECOState is the retained incremental-re-synthesis state of an outcome:
// the exact synthesis input plus, for a partitioned run, the per-region
// trees and summaries the next delta can splice against. Everything here is
// shared, not copied — treat it as immutable.
type ECOState struct {
	Root  geom.Point
	Sinks []geom.Point
	Tech  *tech.Tech
	// Opt is the prior run's options with the callback stripped; an ECO run
	// inherits every synthesis knob from here, so a chained delta can never
	// silently re-synthesize dirty scopes under different settings than the
	// retained clean ones.
	Opt Options

	// Regions, Trees and Sums hold the partitioned pipeline's per-region
	// state in region ID order; all nil for a monolithic prior.
	Regions []partition.Region
	Trees   []*ctree.Tree
	Sums    []*eval.RegionEval

	// arena is the retained job's scratch arena, recycled by chained ECO
	// re-synthesis so steady-state deltas run against warm buffers. Guarded
	// by TryAcquire: when two ECO runs share this state concurrently (an LRU
	// of retained bases), the loser proceeds with a nil arena — package-pool
	// fallback — instead of sharing hot scratch mid-run. Unexported on
	// purpose: scratch never persists, so gob snapshots skip it and a
	// warm-started base simply re-warms on its first delta.
	arena *arena.Job
}

// ECOStats summarizes an incremental run on its Outcome.
type ECOStats struct {
	// DirtyScopes of TotalScopes were re-synthesized; a scope is a
	// partition region or, monolithically, a low-level leaf cluster.
	DirtyScopes int `json:"dirty_scopes"`
	TotalScopes int `json:"total_scopes"`
	// Partitioned reports which pipeline the prior outcome came from.
	Partitioned bool `json:"partitioned"`
	// ReusedSinks counts sinks whose subtrees were retained unchanged.
	ReusedSinks int `json:"reused_sinks"`
	// FullResynthesis marks a delta that dirtied the whole design (a
	// technology change); DirtyScopes == TotalScopes then.
	FullResynthesis bool `json:"full_resynthesis,omitempty"`
}

// retainedOptions strips the per-call callback from options headed into an
// ECOState: retaining a Progress closure would leak whatever it captures
// (jobs, requests) into long-lived caches, and a later ECO run supplies its
// own anyway.
func retainedOptions(opt Options) Options {
	opt.Progress = nil
	// The run's arena must not ride along either: the retained copy lives on
	// ECOState.Arena behind the TryAcquire guard, while a job pointer buried
	// in Opt would be re-threaded into chained runs unguarded.
	opt.Arena = nil
	// Nor the region executor: retained options seed chained ECO re-runs
	// (and gob snapshots), and a cluster-mode executor must be re-installed
	// per job by the daemon that owns the peers, never revived from state.
	opt.RegionExec = nil
	return opt
}

// chainedArena picks the arena a chained ECO's retained state carries
// forward: the prior state's when it has one, else a fresh job (a base
// decoded from a persistence snapshot arrives arena-less, since scratch is
// never serialized — its first retaining delta re-mints one here).
func chainedArena(st *ECOState, sinks int) *arena.Job {
	if st.arena != nil {
		return st.arena
	}
	return arena.NewJob(sinks)
}

// SynthesizeECO is SynthesizeECOContext with a background context.
func SynthesizeECO(prev *Outcome, d eco.Delta, opt Options) (*Outcome, error) {
	return SynthesizeECOContext(context.Background(), prev, d, opt)
}

// SynthesizeECOContext incrementally re-synthesizes a prior outcome under a
// delta. prev must carry retained state (Options.RetainECO on the prior
// run). Of opt, only the scheduling fields are honored — Workers, Progress
// and RetainECO — every synthesis knob (mode, weights, partitioning,
// corners) comes from the retained state, overridden only by the delta's
// SetCorners/SetTech. Progress reports the re-run under PhaseECO. The
// returned outcome's DP/Refine statistics cover the re-synthesized scopes
// only; Dual is not carried.
func SynthesizeECOContext(ctx context.Context, prev *Outcome, d eco.Delta, opt Options) (*Outcome, error) {
	if prev == nil || prev.Retained == nil {
		return nil, fmt.Errorf("core: eco: outcome has no retained state (synthesize with Options.RetainECO)")
	}
	st := prev.Retained
	if err := d.Validate(len(st.Sinks)); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	knobs := st.Opt
	knobs.Workers = opt.Workers
	knobs.Progress = opt.Progress
	knobs.RetainECO = opt.RetainECO
	if opt.Faults != nil {
		// Like Progress, the caller's registry wins over a retained one: the
		// service threads its live registry into chained deltas.
		knobs.Faults = opt.Faults
	}
	if len(d.SetCorners) > 0 {
		knobs.Corners = d.SetCorners
	}
	// Recycle the retained job's arena: a chained delta re-runs its dirty
	// scopes against the warm scratch of the run that produced the base.
	// TryAcquire arbitrates concurrent deltas on one retained state — the
	// loser runs from the package pools, bit-identically, rather than
	// blocking or sharing.
	aj := st.arena
	if !aj.TryAcquire() {
		aj = nil
	}
	defer aj.Release()
	knobs.Arena = aj
	// The ECO injection point guards the whole splice path, including the
	// tech-change full re-synthesis below.
	if err := knobs.Faults.Check(ctx, fault.PointECO); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// A technology change invalidates every retained delay and sizing
	// decision: the dirty set is the whole design.
	if d.SetTech != nil {
		newSinks, _ := eco.Apply(st.Sinks, d)
		out, err := SynthesizeContext(ctx, st.Root, newSinks, d.SetTech, knobs)
		if err != nil {
			return nil, err
		}
		scopes := 1
		if len(out.Regions) > 0 {
			scopes = len(out.Regions)
		}
		out.ECO = &ECOStats{
			DirtyScopes: scopes, TotalScopes: scopes,
			Partitioned: len(out.Regions) > 0, FullResynthesis: true,
		}
		return out, nil
	}

	start := time.Now()
	emit := func(ph Phase, done bool, elapsed time.Duration) {
		if knobs.Progress != nil {
			knobs.Progress(Progress{Phase: ph, Done: done, Elapsed: elapsed})
		}
	}
	partitioned := len(st.Regions) > 0

	// Nothing moved: reuse the prior tree outright. Only the sign-off set
	// can differ, and corners never dirty the tree.
	if !d.Geometric() {
		out := &Outcome{
			Tree: prev.Tree, Metrics: prev.Metrics, DP: prev.DP, Refine: prev.Refine,
			Dual: prev.Dual, Corners: prev.Corners, Regions: prev.Regions,
		}
		total := 1
		if partitioned {
			total = len(st.Regions)
		}
		out.ECO = &ECOStats{TotalScopes: total, Partitioned: partitioned, ReusedSinks: len(st.Sinks)}
		if len(d.SetCorners) > 0 {
			if err := signoffCorners(ctx, out, st.Tech, knobs, emit); err != nil {
				return nil, err
			}
		}
		if knobs.RetainECO {
			retained := *st
			retained.Opt = retainedOptions(knobs)
			out.Retained = &retained
		}
		out.TotalTime = time.Since(start)
		return out, nil
	}

	newSinks, oldToNew := eco.Apply(st.Sinks, d)
	var out *Outcome
	var err error
	if partitioned {
		out, err = ecoPartitioned(ctx, st, d, newSinks, oldToNew, knobs, emit)
	} else {
		out, err = ecoMonolithic(ctx, prev.Tree, st, d, newSinks, oldToNew, knobs, emit)
	}
	if err != nil {
		return nil, err
	}
	out.TotalTime = time.Since(start)
	return out, nil
}

// ecoPartitioned re-synthesizes the dirty regions of a partitioned prior
// and reuses every clean region's retained tree and summary, then re-runs
// the (cheap) stitch + hierarchical composition tail.
func ecoPartitioned(ctx context.Context, st *ECOState, d eco.Delta, newSinks []geom.Point, oldToNew []int, knobs Options, emit func(Phase, bool, time.Duration)) (*Outcome, error) {
	emit(PhaseECO, false, 0)
	te := time.Now()
	plan, err := eco.PlanRegions(st.Regions, st.Sinks, oldToNew, newSinks, d, knobs.Partition)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nDirty := plan.DirtyCount()
	var dirtyIdx []int
	for i, dd := range plan.Dirty {
		if dd {
			dirtyIdx = append(dirtyIdx, i)
		}
	}

	out := &Outcome{Regions: make([]RegionStat, len(plan.Regions))}
	trees := make([]*ctree.Tree, len(plan.Regions))
	sums := make([]*eval.RegionEval, len(plan.Regions))

	// Same budget split as the full pipeline: regions fan out over the
	// worker budget (outer capped at physical cores), each dirty region's
	// inner phases run on an equal slice. Deterministic in every count.
	workers := par.N(knobs.Workers)
	outer := workers
	if cores := par.N(0); outer > cores {
		outer = cores
	}
	inner := 1
	if nDirty > 0 {
		if inner = workers / nDirty; inner < 1 {
			inner = 1
		}
	}
	type dirtyRun struct {
		st   *stages
		sum  *eval.RegionEval
		took time.Duration
		err  error
	}
	runs := make([]dirtyRun, len(dirtyIdx))
	var done atomic.Int64
	par.ForEach(outer, len(dirtyIdx), func(k int) {
		i := dirtyIdx[k]
		r := plan.Regions[i]
		local := make([]geom.Point, len(r.Sinks))
		for j, si := range r.Sinks {
			local[j] = newSinks[si]
		}
		t0 := time.Now()
		// Dirty regions run concurrently, so each draws its own right-sized
		// job from the shared pool instead of the run-level knobs.Arena.
		job := regionJobs.Get(len(r.Sinks))
		defer regionJobs.Put(job)
		kn := knobs
		kn.Arena = job
		stg, err := runStages(ctx, r.Anchor, local, st.Tech, kn, inner, nil)
		if err != nil {
			runs[k].err = fmt.Errorf("region %d: %w", r.ID, err)
			return
		}
		sum, err := eval.New(st.Tech, eval.Elmore).SummarizeRegionIn(stg.tree, job)
		if err != nil {
			runs[k].err = fmt.Errorf("region %d: %w", r.ID, err)
			return
		}
		sum.Sinks = r.Sinks
		runs[k] = dirtyRun{st: stg, sum: sum, took: time.Since(t0)}
		if knobs.Progress != nil {
			knobs.Progress(Progress{Phase: PhaseECO, Point: int(done.Add(1)), Total: nDirty})
		}
	})
	var dpTotal insert.Result
	for k, i := range dirtyIdx {
		if runs[k].err != nil {
			return nil, fmt.Errorf("core: eco: %w", runs[k].err)
		}
		sum := runs[k].sum
		trees[i], sums[i] = runs[k].st.tree, sum
		out.Regions[i] = RegionStat{
			ID: i, Sinks: len(plan.Regions[i].Sinks),
			Buffers: sum.Metrics.Buffers, NTSVs: sum.Metrics.NTSVs, WL: sum.Metrics.WL,
			Latency: sum.Metrics.Latency, Skew: sum.Metrics.Skew,
			Time: runs[k].took,
		}
		out.RouteTime += runs[k].st.routeTime
		out.InsertTime += runs[k].st.insertTime
		out.RefineTime += runs[k].st.refineTime
		dpTotal.Nodes += runs[k].st.dp.Nodes
		dpTotal.Solutions += runs[k].st.dp.Solutions
	}
	reused := 0
	for i := range plan.Regions {
		if plan.Dirty[i] {
			continue
		}
		p := plan.Prev[i]
		trees[i] = st.Trees[p]
		sum := *st.Sums[p]
		sum.Sinks = plan.Regions[i].Sinks // remapped post-delta indices
		sums[i] = &sum
		reused += len(plan.Regions[i].Sinks)
		out.Regions[i] = RegionStat{
			ID: i, Sinks: len(plan.Regions[i].Sinks),
			Buffers: sum.Metrics.Buffers, NTSVs: sum.Metrics.NTSVs, WL: sum.Metrics.WL,
			Latency: sum.Metrics.Latency, Skew: sum.Metrics.Skew,
		}
	}
	out.DP = &dpTotal
	out.ECOTime = time.Since(te)
	emit(PhaseECO, true, out.ECOTime)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	if err := stitchAndCompose(ctx, st.Root, plan.Regions, trees, sums, st.Tech, knobs, out, emit); err != nil {
		return nil, err
	}
	out.ECO = &ECOStats{
		DirtyScopes: nDirty, TotalScopes: len(plan.Regions),
		Partitioned: true, ReusedSinks: reused,
	}
	if knobs.RetainECO {
		out.Retained = &ECOState{
			Root: st.Root, Sinks: newSinks, Tech: st.Tech, Opt: retainedOptions(knobs),
			Regions: plan.Regions, Trees: trees, Sums: sums,
			arena: chainedArena(st, len(newSinks)),
		}
	}
	return out, nil
}

// ecoMonolithic re-synthesizes the dirty leaf clusters of a monolithic
// prior: the retained tree minus the dirty leaf nets is cloned, each dirty
// cluster's sinks run through the same runStages pipeline as a miniature
// scope rooted at the cluster centroid, the fresh subtrees are grafted back
// at the centroids (re-legalizing the drive caps there), and the spliced
// tree is re-evaluated with one flat what-if pass — no structural
// revalidation, no staged network rebuild.
func ecoMonolithic(ctx context.Context, prevTree *ctree.Tree, st *ECOState, d eco.Delta, newSinks []geom.Point, oldToNew []int, knobs Options, emit func(Phase, bool, time.Duration)) (*Outcome, error) {
	emit(PhaseECO, false, 0)
	te := time.Now()
	clusterOf, centroids, centroidNode, err := leafClusters(prevTree, len(st.Sinks))
	if err != nil {
		return nil, fmt.Errorf("core: eco: %w", err)
	}
	plan, err := eco.PlanClusters(clusterOf, centroids, oldToNew, newSinks, d)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Splice out the dirty leaf nets: everything below a dirty centroid
	// goes; the centroid itself (the graft point) stays, keeping its
	// incoming trunk edge, wiring and any refinement buffer.
	dropBelow := make([]bool, prevTree.Len())
	for _, c := range plan.Clusters {
		for _, child := range prevTree.Nodes[centroidNode[c]].Children {
			markSubtree(prevTree, child, dropBelow)
		}
	}
	tree, idMap := prevTree.CloneWithout(func(id int) bool { return dropBelow[id] })
	// Surviving sinks take their post-delta indices (removed sinks lived in
	// dirty clusters, so every survivor remaps).
	for i := range tree.Nodes {
		if tree.Nodes[i].Kind == ctree.KindSink {
			tree.Nodes[i].SinkIdx = oldToNew[tree.Nodes[i].SinkIdx]
		}
	}

	// Re-run the dirty clusters as miniature synthesis scopes.
	workers := par.N(knobs.Workers)
	outer := workers
	if cores := par.N(0); outer > cores {
		outer = cores
	}
	inner := 1
	if len(plan.Clusters) > 0 {
		if inner = workers / len(plan.Clusters); inner < 1 {
			inner = 1
		}
	}
	mini := knobs
	mini.Partition = partition.Options{}
	mini.Corners = nil
	mini.Progress = nil
	minis := make([]*stages, len(plan.Clusters))
	errs := make([]error, len(plan.Clusters))
	var done atomic.Int64
	par.ForEach(outer, len(plan.Clusters), func(k int) {
		members := plan.Members[k]
		if len(members) == 0 {
			return // cluster lost every sink: the centroid stays childless
		}
		local := make([]geom.Point, len(members))
		for j, si := range members {
			local[j] = newSinks[si]
		}
		root := prevTree.Nodes[centroidNode[plan.Clusters[k]]].Pos
		// Mini scopes run concurrently; like partitioned regions they draw
		// per-scope jobs from the shared pool, not the run-level arena.
		job := regionJobs.Get(len(members))
		defer regionJobs.Put(job)
		mopt := mini
		mopt.Arena = job
		stg, err := runStages(ctx, root, local, st.Tech, mopt, inner, nil)
		if err != nil {
			errs[k] = fmt.Errorf("cluster %d: %w", plan.Clusters[k], err)
			return
		}
		minis[k] = stg
		if knobs.Progress != nil {
			knobs.Progress(Progress{Phase: PhaseECO, Point: int(done.Add(1)), Total: len(plan.Clusters)})
		}
	})
	var dpTotal insert.Result
	var out Outcome
	for k := range plan.Clusters {
		if errs[k] != nil {
			return nil, fmt.Errorf("core: eco: %w", errs[k])
		}
		if minis[k] == nil {
			continue
		}
		graftLeafTree(tree, idMap[centroidNode[plan.Clusters[k]]], minis[k].tree, plan.Members[k])
		out.RouteTime += minis[k].routeTime
		out.InsertTime += minis[k].insertTime
		out.RefineTime += minis[k].refineTime
		dpTotal.Nodes += minis[k].dp.Nodes
		dpTotal.Solutions += minis[k].dp.Solutions
	}
	// Re-legalize the graft points: a leaf net that grew past the cap
	// budget gets a shielding buffer at its centroid, exactly the limit the
	// clustering honored at full synthesis.
	limit := 0.6 * st.Tech.Buf.MaxCap
	for _, c := range plan.Clusters {
		id := idMap[centroidNode[c]]
		if !tree.Nodes[id].BufferAtNode && eval.DownstreamCap(tree, id, st.Tech) > limit {
			tree.Nodes[id].BufferAtNode = true
		}
	}
	out.DP = &dpTotal
	out.Tree = tree
	out.ECOTime = time.Since(te)
	emit(PhaseECO, true, out.ECOTime)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	emit(PhaseEval, false, 0)
	t3 := time.Now()
	m, err := eval.New(st.Tech, eval.Elmore).EvaluateWhatIfIn(tree, len(newSinks), knobs.Arena)
	if err != nil {
		return nil, fmt.Errorf("core: evaluation: %w", err)
	}
	out.Metrics = m
	emit(PhaseEval, true, time.Since(t3))

	if len(knobs.Corners) > 0 {
		if err := signoffCorners(ctx, &out, st.Tech, knobs, emit); err != nil {
			return nil, err
		}
	}
	dirtySinks := 0
	for _, ms := range plan.Members {
		dirtySinks += len(ms)
	}
	out.ECO = &ECOStats{
		DirtyScopes: len(plan.Clusters), TotalScopes: plan.Total,
		ReusedSinks: len(newSinks) - dirtySinks,
	}
	if knobs.RetainECO {
		out.Retained = &ECOState{
			Root: st.Root, Sinks: newSinks, Tech: st.Tech, Opt: retainedOptions(knobs),
			arena: chainedArena(st, len(newSinks)),
		}
	}
	return &out, nil
}

// leafClusters derives the monolithic tree's leaf-cluster structure: per
// sink its cluster index, per cluster its centroid position and tree node.
// Cluster indices must be the contiguous 0..K-1 range DualLevel flattens to;
// grafted subtrees never introduce new centroids (their internal centroids
// are demoted to Steiner nodes), so the derivation survives chained ECOs.
func leafClusters(t *ctree.Tree, nSinks int) (clusterOf []int, centroids []geom.Point, centroidNode []int, err error) {
	maxIdx := -1
	for i := range t.Nodes {
		if t.Nodes[i].Kind == ctree.KindCentroid && t.Nodes[i].ClusterIdx > maxIdx {
			maxIdx = t.Nodes[i].ClusterIdx
		}
	}
	if maxIdx < 0 {
		return nil, nil, nil, fmt.Errorf("tree has no leaf clusters")
	}
	centroids = make([]geom.Point, maxIdx+1)
	centroidNode = make([]int, maxIdx+1)
	for i := range centroidNode {
		centroidNode[i] = -1
	}
	clusterOf = make([]int, nSinks)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	var walk func(id, cluster int) error
	walk = func(id, cluster int) error {
		n := &t.Nodes[id]
		switch n.Kind {
		case ctree.KindCentroid:
			c := n.ClusterIdx
			if c < 0 || c > maxIdx || centroidNode[c] >= 0 {
				return fmt.Errorf("malformed cluster index %d at node %d", c, id)
			}
			centroids[c], centroidNode[c] = n.Pos, id
			cluster = c
		case ctree.KindSink:
			if cluster < 0 {
				return fmt.Errorf("sink %d outside any leaf cluster", n.SinkIdx)
			}
			if n.SinkIdx < 0 || n.SinkIdx >= nSinks {
				return fmt.Errorf("sink index %d outside [0,%d)", n.SinkIdx, nSinks)
			}
			clusterOf[n.SinkIdx] = cluster
		}
		for _, c := range n.Children {
			if err := walk(c, cluster); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root(), -1); err != nil {
		return nil, nil, nil, err
	}
	for c, id := range centroidNode {
		if id < 0 {
			return nil, nil, nil, fmt.Errorf("cluster %d has no centroid node", c)
		}
	}
	for s, c := range clusterOf {
		if c < 0 {
			return nil, nil, nil, fmt.Errorf("sink %d not present in the tree", s)
		}
	}
	return clusterOf, centroids, centroidNode, nil
}

func markSubtree(t *ctree.Tree, id int, mark []bool) {
	mark[id] = true
	for _, c := range t.Nodes[id].Children {
		markSubtree(t, c, mark)
	}
}

// graftLeafTree splices a miniature scope's tree under the retained graft
// point `at` (the dirty cluster's centroid): the mini root collapses into
// the centroid (a root carrying a node buffer keeps it on a zero-length
// child so the RC network is preserved element for element), the mini
// scope's internal centroids are demoted to Steiner nodes so cluster
// indices stay unique, and sink indices map through the post-delta member
// list.
func graftLeafTree(dst *ctree.Tree, at int, mini *ctree.Tree, members []int) {
	rootID := mini.Root()
	idMap := make([]int, mini.Len())
	idMap[rootID] = at
	if mini.Nodes[rootID].BufferAtNode {
		b := dst.Add(at, ctree.KindSteiner, mini.Nodes[rootID].Pos)
		dst.Nodes[b].BufferAtNode = true
		idMap[rootID] = b
	}
	mini.PreOrder(func(i int) {
		if i == rootID {
			return
		}
		n := &mini.Nodes[i]
		parent := idMap[n.Parent]
		var id int
		if n.Kind == ctree.KindSink {
			id = dst.AddSink(parent, n.Pos, members[n.SinkIdx])
		} else {
			id = dst.Add(parent, ctree.KindSteiner, n.Pos)
		}
		m := &dst.Nodes[id]
		m.Wiring = n.Wiring
		m.SnakeExtra = n.SnakeExtra
		m.BufferAtNode = n.BufferAtNode
		idMap[i] = id
	})
}
