package core

// The region execution seam of the partitioned pipeline (DESIGN.md §9).
// One region's synthesis — route→insert→refine over its local sink slice
// plus the hierarchical summary the stitch consumes — is an independent,
// pure unit of work: it reads only (anchor, local sinks, tech, knobs) and
// its result is deterministic in the worker count. RunRegion packages that
// unit behind an exported boundary so a cluster-mode daemon can execute it
// on a remote peer (serve's POST /internal/region) and splice the wire
// result back into the local stitch, bit-identically to local execution.

import (
	"context"
	"fmt"
	"time"

	"dscts/internal/ctree"
	"dscts/internal/eval"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

// RegionWork is one region's unit of work in a partitioned run: the tap
// anchor and the region-local sink placement. Sinks are region-local
// coordinates; the mapping back to global sink indices stays with the
// caller, so the unit is self-contained and wire-encodable.
type RegionWork struct {
	ID     int
	Anchor geom.Point
	Sinks  []geom.Point
}

// RegionOut is the result of one region's synthesis: the buffered region
// tree plus the hierarchical summary the stitch stage consumes, and the
// region's share of the DP statistics and per-phase work times. Sum.Sinks
// is left nil — the caller rebinds the global sink indices. All fields are
// plain data (gob-encodable), which is what lets a region execute on a
// remote peer.
type RegionOut struct {
	Tree *ctree.Tree
	Sum  *eval.RegionEval

	DPNodes     int
	DPSolutions int

	RouteTime  time.Duration
	InsertTime time.Duration
	RefineTime time.Duration
}

// RegionExecFunc executes one region of a partitioned run. Options.
// RegionExec installs one; the partitioned pipeline then routes every
// region through it instead of the built-in local path. Implementations
// MUST be result-equivalent to RunRegion with the same (work, tech,
// options) — the engine's determinism contract extends across the seam,
// and the cluster determinism suite pins it.
type RegionExecFunc func(ctx context.Context, w RegionWork) (*RegionOut, error)

// RunRegion executes one region locally: the exact per-region body of the
// partitioned pipeline (scratch job from the shared region pool, the full
// route→insert→refine stack, then the hierarchical region summary).
// workers bounds the region's inner parallelism; results are bit-identical
// in it. opt's scheduling hooks (Arena, Progress, RegionExec) are ignored
// — the region draws its own pooled arena — while opt.Faults is honored,
// so fault injection fires on whichever node actually executes.
func RunRegion(ctx context.Context, w RegionWork, tc *tech.Tech, opt Options, workers int) (*RegionOut, error) {
	if workers < 1 {
		workers = 1
	}
	job := regionJobs.Get(len(w.Sinks))
	defer regionJobs.Put(job)
	ropt := opt
	ropt.Arena = job
	ropt.Progress = nil
	ropt.RegionExec = nil
	st, err := runStages(ctx, w.Anchor, w.Sinks, tc, ropt, workers, nil)
	if err != nil {
		return nil, err
	}
	sum, err := eval.New(tc, eval.Elmore).SummarizeRegionIn(st.tree, job)
	if err != nil {
		return nil, err
	}
	ro := &RegionOut{
		Tree:       st.tree,
		Sum:        sum,
		RouteTime:  st.routeTime,
		InsertTime: st.insertTime,
		RefineTime: st.refineTime,
	}
	if st.dp != nil {
		ro.DPNodes, ro.DPSolutions = st.dp.Nodes, st.dp.Solutions
	}
	return ro, nil
}

// validateRegionOut rejects a wire result that cannot be stitched — a
// remote peer speaking a different build must not crash the local stitch.
func validateRegionOut(ro *RegionOut, wantSinks int) error {
	if ro == nil || ro.Tree == nil || ro.Sum == nil {
		return fmt.Errorf("region executor returned incomplete result")
	}
	if got := len(ro.Tree.Sinks()); got != wantSinks {
		return fmt.Errorf("region executor returned %d sinks, want %d", got, wantSinks)
	}
	return nil
}
