package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"dscts/internal/eval"
	"dscts/internal/geom"
	"dscts/internal/partition"
	"dscts/internal/tech"
)

func clusteredSinks(n int, seed int64, side float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	hot := make([]geom.Point, 5)
	for i := range hot {
		hot[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	out := make([]geom.Point, n)
	for i := range out {
		if rng.Float64() < 0.7 {
			h := hot[rng.Intn(len(hot))]
			out[i] = geom.Pt(
				math.Min(side, math.Max(0, h.X+rng.NormFloat64()*side/10)),
				math.Min(side, math.Max(0, h.Y+rng.NormFloat64()*side/10)))
		} else {
			out[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
		}
	}
	return out
}

// TestRegionOrderInvariance feeds the same regions to the pipeline in
// permuted order and demands a bit-identical outcome: the stitch
// canonicalizes by region ID, so scheduling or discovery order can never
// leak into results.
func TestRegionOrderInvariance(t *testing.T) {
	tc := tech.ASAP7()
	sinks := clusteredSinks(4000, 3, 600)
	root := geom.Pt(300, 300)
	regions, err := partition.Split(sinks, partition.Options{MaxSinks: 900})
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) < 3 {
		t.Fatalf("want >= 3 regions, got %d", len(regions))
	}
	opt := Options{Workers: 2, Partition: partition.Options{MaxSinks: 900}}
	base, err := synthesizeRegions(context.Background(), root, sinks, tc, opt, regions, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, perm := range [][]int{reversedPerm(len(regions)), rotatedPerm(len(regions))} {
		shuffled := make([]partition.Region, len(regions))
		for i, p := range perm {
			shuffled[i] = regions[p]
		}
		got, err := synthesizeRegions(context.Background(), root, sinks, tc, opt, shuffled, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Metrics, got.Metrics) {
			t.Fatalf("metrics differ under region permutation %v:\nbase %+v\ngot  %+v", perm, base.Metrics, got.Metrics)
		}
		if base.Tree.Len() != got.Tree.Len() {
			t.Fatalf("tree size differs under permutation %v: %d vs %d", perm, base.Tree.Len(), got.Tree.Len())
		}
		if !reflect.DeepEqual(base.Tree.Nodes, got.Tree.Nodes) {
			t.Fatalf("tree nodes differ under permutation %v", perm)
		}
	}
}

func reversedPerm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

func rotatedPerm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = (i + n/2) % n
	}
	return out
}

// TestPartitionSingleRegionBitIdentical pins the pipeline's safety net: a
// capacity at or above the sink count must run the monolithic flow and
// produce a bit-identical outcome (same tree, same metrics, no region
// stats).
func TestPartitionSingleRegionBitIdentical(t *testing.T) {
	tc := tech.ASAP7()
	sinks := clusteredSinks(1200, 9, 400)
	root := geom.Pt(200, 200)
	mono, err := Synthesize(root, sinks, tc, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Synthesize(root, sinks, tc, Options{Workers: 2, Partition: partition.Options{MaxSinks: len(sinks)}})
	if err != nil {
		t.Fatal(err)
	}
	if part.Regions != nil {
		t.Fatalf("single-region run reported %d region stats; want the monolithic path", len(part.Regions))
	}
	if !reflect.DeepEqual(mono.Metrics, part.Metrics) {
		t.Fatalf("single-region partition drifted from monolithic:\nmono %+v\npart %+v", mono.Metrics, part.Metrics)
	}
	if mono.Tree.Len() != part.Tree.Len() {
		t.Fatalf("tree size drifted: %d vs %d", mono.Tree.Len(), part.Tree.Len())
	}
}

// TestComposeHierMatchesFullEval pins the hierarchical evaluator against the
// full-tree evaluator on a real partitioned run: composed metrics must agree
// with a re-walk of the merged tree to float noise.
func TestComposeHierMatchesFullEval(t *testing.T) {
	tc := tech.ASAP7()
	sinks := clusteredSinks(5000, 5, 700)
	root := geom.Pt(350, 350)
	out, err := Synthesize(root, sinks, tc, Options{Partition: partition.Options{MaxSinks: 1200}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Regions) < 2 {
		t.Fatalf("expected a partitioned run, got %d regions", len(out.Regions))
	}
	if err := out.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	full, err := eval.New(tc, eval.Elmore).Evaluate(out.Tree)
	if err != nil {
		t.Fatal(err)
	}
	const relTol = 1e-9
	relClose := func(a, b float64) bool {
		if a == b {
			return true
		}
		s := math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b) <= relTol*s
	}
	if !relClose(out.Metrics.Latency, full.Latency) || !relClose(out.Metrics.Skew, full.Skew) {
		t.Fatalf("composed latency/skew %.9g/%.9g vs full %.9g/%.9g",
			out.Metrics.Latency, out.Metrics.Skew, full.Latency, full.Skew)
	}
	if out.Metrics.Buffers != full.Buffers || out.Metrics.NTSVs != full.NTSVs {
		t.Fatalf("composed resources %d/%d vs full %d/%d",
			out.Metrics.Buffers, out.Metrics.NTSVs, full.Buffers, full.NTSVs)
	}
	if !relClose(out.Metrics.WL, full.WL) {
		t.Fatalf("composed WL %.9g vs full %.9g", out.Metrics.WL, full.WL)
	}
	if len(out.Metrics.SinkDelays) != len(full.SinkDelays) {
		t.Fatalf("composed %d sink delays, full %d", len(out.Metrics.SinkDelays), len(full.SinkDelays))
	}
	for k, v := range full.SinkDelays {
		if !relClose(out.Metrics.SinkDelays[k], v) {
			t.Fatalf("sink %d composed delay %.12g vs full %.12g", k, out.Metrics.SinkDelays[k], v)
		}
	}
}

// TestPartitionBalancedTaps checks the cross-region skew-balancing contract:
// after the stitch, every region's worst global sink delay (tap arrival +
// region latency) sits within the balancing tolerance of the slowest one.
func TestPartitionBalancedTaps(t *testing.T) {
	tc := tech.ASAP7()
	sinks := clusteredSinks(6000, 13, 800)
	root := geom.Pt(400, 400)
	out, err := Synthesize(root, sinks, tc, Options{Partition: partition.Options{MaxSinks: 1500}})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range out.Regions {
		worst := r.Arrival + r.Latency
		lo = math.Min(lo, worst)
		hi = math.Max(hi, worst)
	}
	if spread := hi - lo; spread > 1e-4 {
		t.Fatalf("tap misalignment %.6g ps after balancing (regions %d)", spread, len(out.Regions))
	}
	// Global skew can therefore not exceed the worst region-internal skew
	// (alignment removed the cross-region component).
	worstInternal := 0.0
	for _, r := range out.Regions {
		worstInternal = math.Max(worstInternal, r.Skew)
	}
	if out.Metrics.Skew > worstInternal+1e-4 {
		t.Fatalf("global skew %.4f exceeds worst region-internal skew %.4f", out.Metrics.Skew, worstInternal)
	}
}

// TestPartitionProgressPhases checks the new progress model: partition
// start/done with per-region points, stitch start/done, then eval.
func TestPartitionProgressPhases(t *testing.T) {
	tc := tech.ASAP7()
	sinks := clusteredSinks(3000, 17, 500)
	var mu sync.Mutex
	var events []Progress
	_, err := Synthesize(geom.Pt(250, 250), sinks, tc, Options{
		Partition: partition.Options{MaxSinks: 800},
		Progress:  func(p Progress) { mu.Lock(); events = append(events, p); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawPartStart, sawPartDone, sawStitch, sawEval bool
	points := 0
	for _, ev := range events {
		switch ev.Phase {
		case PhasePartition:
			if ev.Total > 0 {
				points++
			} else if ev.Done {
				sawPartDone = true
			} else {
				sawPartStart = true
			}
		case PhaseStitch:
			if ev.Done {
				sawStitch = true
			}
		case PhaseEval:
			if ev.Done {
				sawEval = true
			}
		}
	}
	if !sawPartStart || !sawPartDone || !sawStitch || !sawEval {
		t.Fatalf("missing phases: partition start=%v done=%v stitch=%v eval=%v", sawPartStart, sawPartDone, sawStitch, sawEval)
	}
	if points < 2 {
		t.Fatalf("want per-region partition points, got %d", points)
	}
}
