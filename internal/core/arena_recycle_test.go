package core

// Determinism tests for arena recycling (DESIGN.md §8): a synthesis run on a
// warm recycled arena must be bit-identical to one on a fresh arena, and to
// one with no arena at all (package-pool fallback). Run under -race in CI,
// these also prove the pooled scratch is properly confined.

import (
	"reflect"
	"testing"

	"dscts/internal/arena"
	"dscts/internal/tech"
)

// sameOutcome pins the result identity that arena recycling must preserve:
// the full node array of the tree and every metric, exactly.
func sameOutcome(t *testing.T, label string, a, b *Outcome) {
	t.Helper()
	if !reflect.DeepEqual(a.Tree.Nodes, b.Tree.Nodes) {
		t.Errorf("%s: trees differ", label)
	}
	if a.Metrics.Latency != b.Metrics.Latency || a.Metrics.Skew != b.Metrics.Skew ||
		a.Metrics.WL != b.Metrics.WL || a.Metrics.Buffers != b.Metrics.Buffers ||
		a.Metrics.NTSVs != b.Metrics.NTSVs {
		t.Errorf("%s: metrics differ: %+v vs %+v", label, a.Metrics, b.Metrics)
	}
	if !reflect.DeepEqual(a.Metrics.SinkDelays, b.Metrics.SinkDelays) {
		t.Errorf("%s: sink delays differ", label)
	}
}

// TestJobRecycleBitIdentical runs the monolithic flow three ways — no arena,
// fresh job, and the SAME job again (recycled, every lane warm) — and
// requires bit-identical outcomes.
func TestJobRecycleBitIdentical(t *testing.T) {
	tc := tech.ASAP7()
	p := c4Placement(t)

	ref, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	job := arena.NewJob(len(p.Sinks))
	fresh, err := Synthesize(p.Root, p.Sinks, tc, Options{Arena: job})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Synthesize(p.Root, p.Sinks, tc, Options{Arena: job})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "fresh job vs no arena", fresh, ref)
	sameOutcome(t, "recycled job vs no arena", warm, ref)
}

// TestECOChainRecycleBitIdentical chains two deltas through SynthesizeECO
// twice: once with the retained arena recycled across the chain (the
// default), once with the retained arena stripped before every hop (pool
// fallback). Both chains must produce bit-identical outcomes at every hop.
func TestECOChainRecycleBitIdentical(t *testing.T) {
	tc := tech.ASAP7()
	p := ecoPlacement(t, "C4")
	opt := Options{RetainECO: true}

	base, err := Synthesize(p.Root, p.Sinks, tc, opt)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := Synthesize(p.Root, p.Sinks, tc, opt)
	if err != nil {
		t.Fatal(err)
	}
	base2.Retained.arena = nil // force the no-arena fallback chain

	prevA, prevB := base, base2
	for hop := 0; hop < 2; hop++ {
		d := localizedDelta(prevA.Retained.Sinks, 17+hop, 40)
		a, err := SynthesizeECO(prevA, d, Options{RetainECO: true})
		if err != nil {
			t.Fatal(err)
		}
		if prevB.Retained.arena != nil {
			t.Fatal("fallback chain grew an arena before the hop")
		}
		b, err := SynthesizeECO(prevB, d, Options{RetainECO: true})
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, "eco hop", a, b)
		prevA = a
		prevB = b
		prevB.Retained.arena = nil
	}
	if prevA.Retained.arena == nil {
		t.Fatal("recycled chain lost its retained arena")
	}
}

// TestPartitionedRegionPoolBitIdentical runs the partitioned pipeline twice
// in a row: the second run's regions draw warm jobs from the shared region
// pool the first run populated, and must be bit-identical to the first.
func TestPartitionedRegionPoolBitIdentical(t *testing.T) {
	tc := tech.ASAP7()
	p := ecoPlacement(t, "C4")
	opt := Options{}
	opt.Partition.MaxSinks = 300

	cold, err := Synthesize(p.Root, p.Sinks, tc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Regions) < 2 {
		t.Fatalf("expected a partitioned run, got %d regions", len(cold.Regions))
	}
	warmRun, err := Synthesize(p.Root, p.Sinks, tc, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "warm region pool vs cold", warmRun, cold)
}
