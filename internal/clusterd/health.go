package clusterd

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Breaker is a per-peer circuit breaker. Consecutive transport failures
// past the threshold open it for a cooldown; while open, Allow reports
// false and callers fall back to local execution instead of queueing more
// work behind a dead peer. After the cooldown one probe call is let
// through (half-open); its outcome closes or re-opens the circuit.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	fails     int
	openUntil time.Time
	halfOpen  bool
	opens     atomic.Int64

	now func() time.Time // test hook
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures for the given cooldown. Zero values pick 3 failures / 5s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed. In the open state it returns
// false until the cooldown elapses, then admits a single half-open probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if b.now().Before(b.openUntil) {
		return false
	}
	if b.halfOpen {
		return false // a probe is already in flight
	}
	b.halfOpen = true
	return true
}

// Success records a successful call, closing the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.halfOpen = false
}

// Failure records a failed call; at the threshold (or on a failed
// half-open probe) the circuit opens for the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.halfOpen || b.fails >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
		b.halfOpen = false
		b.fails = 0
		b.opens.Add(1)
	}
}

// Open reports whether the circuit is currently open.
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && b.now().Before(b.openUntil)
}

// Opens counts how many times the circuit has opened.
func (b *Breaker) Opens() int64 { return b.opens.Load() }

// PeerStatus is one remote peer's view in stats snapshots.
type PeerStatus struct {
	ID          string `json:"id"`
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	BreakerOpen bool   `json:"breaker_open,omitempty"`
	Probes      int64  `json:"probes,omitempty"`
	ProbeFails  int64  `json:"probe_fails,omitempty"`
}

type peerState struct {
	peer       Peer
	healthy    atomic.Bool
	probes     atomic.Int64
	probeFails atomic.Int64
	breaker    *Breaker
}

// PeerSetOptions tunes the liveness layer; zero values pick the defaults
// noted per field.
type PeerSetOptions struct {
	ProbeInterval time.Duration // /readyz cadence, default 2s
	ProbeTimeout  time.Duration // per-probe budget, default 1s
	FailThreshold int           // breaker threshold, default 3
	Cooldown      time.Duration // breaker cooldown, default 5s
	Client        *http.Client  // probe client, default http.DefaultClient semantics
}

// PeerSet tracks the remote members' liveness: a background prober hits
// each peer's /readyz on a fixed cadence, and per-peer circuit breakers
// accumulate the caller-reported transport outcomes. Peers start healthy
// (optimistic) so a cold cluster routes immediately; the first failed
// probe or tripped breaker takes a peer out of rotation.
type PeerSet struct {
	order []string
	peers map[string]*peerState
	opt   PeerSetOptions
	httpc *http.Client

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewPeerSet builds the set over the remote peers (the local node is not a
// member of its own PeerSet). Call Start to launch the prober and Close to
// stop it.
func NewPeerSet(peers []Peer, opt PeerSetOptions) *PeerSet {
	if opt.ProbeInterval <= 0 {
		opt.ProbeInterval = 2 * time.Second
	}
	if opt.ProbeTimeout <= 0 {
		opt.ProbeTimeout = time.Second
	}
	s := &PeerSet{
		peers: make(map[string]*peerState, len(peers)),
		opt:   opt,
		httpc: opt.Client,
		stop:  make(chan struct{}),
	}
	if s.httpc == nil {
		s.httpc = &http.Client{}
	}
	for _, p := range peers {
		st := &peerState{peer: p, breaker: NewBreaker(opt.FailThreshold, opt.Cooldown)}
		st.healthy.Store(true)
		s.order = append(s.order, p.ID)
		s.peers[p.ID] = st
	}
	return s
}

// Start launches the background /readyz prober.
func (s *PeerSet) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.opt.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.probeAll()
			}
		}
	}()
}

// Close stops the prober and waits for it.
func (s *PeerSet) Close() {
	close(s.stop)
	s.wg.Wait()
}

func (s *PeerSet) probeAll() {
	for _, id := range s.order {
		st := s.peers[id]
		ctx, cancel := context.WithTimeout(context.Background(), s.opt.ProbeTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, st.peer.URL+"/readyz", nil)
		ok := false
		if err == nil {
			resp, rerr := s.httpc.Do(req)
			if rerr == nil {
				ok = resp.StatusCode == http.StatusOK
				resp.Body.Close()
			}
		}
		cancel()
		st.probes.Add(1)
		if !ok {
			st.probeFails.Add(1)
		}
		st.healthy.Store(ok)
	}
}

// IDs returns the remote peer IDs in seed order.
func (s *PeerSet) IDs() []string { return s.order }

// URL returns the base URL of a peer, or "" for an unknown id.
func (s *PeerSet) URL(id string) string {
	if st, ok := s.peers[id]; ok {
		return st.peer.URL
	}
	return ""
}

// Usable reports whether a peer is in rotation: known, last probe healthy,
// and its breaker admitting calls.
func (s *PeerSet) Usable(id string) bool {
	st, ok := s.peers[id]
	return ok && st.healthy.Load() && st.breaker.Allow()
}

// Success reports a successful call to a peer (closes its breaker).
func (s *PeerSet) Success(id string) {
	if st, ok := s.peers[id]; ok {
		st.breaker.Success()
	}
}

// Failure reports a failed call to a peer (feeds its breaker).
func (s *PeerSet) Failure(id string) {
	if st, ok := s.peers[id]; ok {
		st.breaker.Failure()
	}
}

// BreakerOpens totals circuit openings across all peers.
func (s *PeerSet) BreakerOpens() int64 {
	var n int64
	for _, st := range s.peers {
		n += st.breaker.Opens()
	}
	return n
}

// Snapshot returns the per-peer status in seed order.
func (s *PeerSet) Snapshot() []PeerStatus {
	out := make([]PeerStatus, 0, len(s.order))
	for _, id := range s.order {
		st := s.peers[id]
		out = append(out, PeerStatus{
			ID:          id,
			URL:         st.peer.URL,
			Healthy:     st.healthy.Load(),
			BreakerOpen: st.breaker.Open(),
			Probes:      st.probes.Load(),
			ProbeFails:  st.probeFails.Load(),
		})
	}
	return out
}
