package clusterd

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring over the cluster members. Every member
// contributes vnodes virtual points, each placed at a hash of "<id>#<i>";
// a key is owned by the member whose first virtual point lies at or after
// the key's hash, wrapping at the top. Placement is a pure function of the
// member IDs and the vnode count — every node computes the identical ring
// from the identical seed list, with no coordination — and removing a
// member only reassigns the keys that member owned (the consistent-hash
// property TestRingRebalanceFraction pins).
type Ring struct {
	vnodes int
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVNodes is the virtual-node count used when the config leaves it
// zero. 64 points per member keeps the ownership imbalance across a small
// cluster within a few percent while the ring stays tiny.
const DefaultVNodes = 64

// NewRing builds the ring over the given member IDs. The input order is
// irrelevant; ties (hash collisions between members, vanishingly unlikely
// with 64-bit points) break by ID so the ring stays a pure function of the
// member set.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, points: make([]ringPoint, 0, len(nodes)*vnodes)}
	var buf [8]byte
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			binary.BigEndian.PutUint64(buf[:], uint64(i))
			h := sha256.New()
			h.Write([]byte(n))
			h.Write([]byte{'#'})
			h.Write(buf[:])
			sum := h.Sum(nil)
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), node: n})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Owner returns the member that owns key. Keys are hashed with the same
// function as the virtual points, so ownership is deterministic across
// nodes and process restarts.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	sum := sha256.Sum256([]byte(key))
	h := binary.BigEndian.Uint64(sum[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Len reports the number of virtual points (members × vnodes).
func (r *Ring) Len() int { return len(r.points) }
