package clusterd

import (
	"fmt"
	"testing"
	"time"
)

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("key-%d", i)
	}
	return ks
}

// Placement is a pure function of the member set: node order, ring
// rebuilds and fresh processes all agree.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2"}, 64)
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs across member orderings: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
	if a.Len() != 3*64 {
		t.Fatalf("ring has %d points, want %d", a.Len(), 3*64)
	}
}

// Virtual nodes keep ownership roughly balanced across a small cluster.
func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 64)
	count := map[string]int{}
	ks := keys(3000)
	for _, k := range ks {
		count[r.Owner(k)]++
	}
	for n, c := range count {
		frac := float64(c) / float64(len(ks))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys; want a rough third", n, 100*frac)
		}
	}
}

// Removing a member moves exactly the keys that member owned — every other
// key keeps its owner (the consistent-hash property the forward-on-miss
// cache depends on across node loss).
func TestRingRebalanceFraction(t *testing.T) {
	full := NewRing([]string{"n1", "n2", "n3"}, 64)
	less := NewRing([]string{"n1", "n2"}, 64)
	ks := keys(3000)
	moved := 0
	for _, k := range ks {
		was, is := full.Owner(k), less.Owner(k)
		if was == "n3" {
			moved++
			continue // n3's keys must move somewhere
		}
		if was != is {
			t.Fatalf("key %q moved %q→%q although its owner survived", k, was, is)
		}
	}
	frac := float64(moved) / float64(len(ks))
	if frac < 0.15 || frac > 0.55 {
		t.Fatalf("leave moved %.1f%% of keys; want a rough third", 100*frac)
	}

	// Join is the same statement in reverse: adding n3 back only claims
	// keys for n3, never shuffles keys between n1 and n2.
	for _, k := range ks {
		was, is := less.Owner(k), full.Owner(k)
		if is != "n3" && was != is {
			t.Fatalf("join moved key %q %q→%q although n3 did not claim it", k, was, is)
		}
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(3, 5*time.Second)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if !b.Allow() || b.Open() {
		t.Fatal("breaker opened below threshold")
	}
	b.Failure()
	if b.Allow() || !b.Open() {
		t.Fatal("breaker did not open at threshold")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open probe not admitted after cooldown")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted while half-open")
	}
	// Probe fails: circuit re-opens immediately.
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker admitted calls after failed half-open probe")
	}
	// Next cooldown, probe succeeds: circuit closes.
	now = now.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted after second cooldown")
	}
	b.Success()
	if !b.Allow() || b.Open() {
		t.Fatal("breaker did not close after successful probe")
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:8080, b=http://h2:8080/ ,c=https://h3")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers[0].ID != "a" || peers[1].URL != "http://h2:8080" {
		t.Fatalf("unexpected parse: %+v", peers)
	}
	self, others, err := SplitSelf(peers, "b")
	if err != nil || self.ID != "b" || len(others) != 2 {
		t.Fatalf("SplitSelf: self=%+v others=%+v err=%v", self, others, err)
	}
	if _, _, err := SplitSelf(peers, "zz"); err == nil {
		t.Fatal("SplitSelf accepted an unknown node id")
	}
	for _, bad := range []string{"", "a=", "=http://x", "a=ftp://x", "a=http://x,a=http://y", "justanid"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) did not fail", bad)
		}
	}
}
