// Package clusterd is the membership substrate of dsctsd's cluster mode
// (DESIGN.md §9): a static, seeded peer list, a consistent-hash ring with
// virtual nodes for deterministic cache-key placement, and a lightweight
// liveness layer (periodic /readyz probes plus a per-peer circuit breaker)
// that lets the serving layer route around dead or misbehaving peers
// without failing jobs.
//
// The name: internal/cluster was already taken by the k-means dual
// clustering stage of the synthesis engine long before the daemon grew a
// distributed mode, and renaming it would churn every engine import and
// the gob type names persisted in PR 8 base snapshots. The daemon-level
// package therefore follows the daemon's naming (dsctsd → clusterd).
package clusterd

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Peer is one static cluster member: a stable node ID and the base URL the
// other members reach it on.
type Peer struct {
	ID  string
	URL string
}

// ParsePeers parses the -peers flag format: a comma-separated list of
// id=url entries naming every cluster member, including the local node.
// Order is preserved (it is the seed order, not the ring order — placement
// on the ring depends only on the IDs). URLs lose any trailing slash so
// path concatenation stays uniform.
func ParsePeers(s string) ([]Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("clusterd: empty peer list")
	}
	seen := make(map[string]bool)
	var peers []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, rawurl, ok := strings.Cut(part, "=")
		id, rawurl = strings.TrimSpace(id), strings.TrimSpace(rawurl)
		if !ok || id == "" || rawurl == "" {
			return nil, fmt.Errorf("clusterd: peer entry %q: want id=url", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("clusterd: duplicate peer id %q", id)
		}
		u, err := url.Parse(rawurl)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("clusterd: peer %q: invalid url %q", id, rawurl)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(rawurl, "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("clusterd: empty peer list")
	}
	return peers, nil
}

// SplitSelf partitions a full member list into the local peer (matched by
// id) and the remote peers, preserving order.
func SplitSelf(peers []Peer, id string) (self Peer, others []Peer, err error) {
	found := false
	for _, p := range peers {
		if p.ID == id {
			self, found = p, true
			continue
		}
		others = append(others, p)
	}
	if !found {
		ids := make([]string, len(peers))
		for i, p := range peers {
			ids[i] = p.ID
		}
		sort.Strings(ids)
		return Peer{}, nil, fmt.Errorf("clusterd: node id %q not in peer list %v", id, ids)
	}
	return self, others, nil
}
