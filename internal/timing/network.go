package timing

import (
	"fmt"
	"math"

	"dscts/internal/tech"
)

// Network is a staged RC tree: wire/via elements hang off a root driver, and
// buffers open new stages. It is the evaluation backend used by
// internal/eval to compute per-sink latency and skew of a finished clock
// tree, independent of how the tree was constructed.
//
// Node 0 is always the root driver (the clock source). Every other node has
// a parent, a series resistance to its parent and a grounded capacitance.
// A node may carry a buffer: the buffer's input pin terminates the upstream
// stage (only Buffer.InputCap is visible upstream) and its output drives the
// node's children as a new stage.
type Network struct {
	nodes []netNode
}

type netNode struct {
	parent int
	res    float64
	cap    float64
	buf    *tech.Buffer
	kids   []int
}

// NewNetwork returns a network containing only the root driver node (id 0)
// with the given drive resistance modeled as... the root is an ideal source
// with optional internal resistance rootRes applied to stage 0.
func NewNetwork(rootRes float64) *Network {
	n := &Network{}
	n.nodes = append(n.nodes, netNode{parent: -1, res: rootRes})
	return n
}

// Len returns the number of nodes including the root.
func (n *Network) Len() int { return len(n.nodes) }

// AddWire appends a node connected to parent through resistance res with
// grounded capacitance cap, returning its id.
func (n *Network) AddWire(parent int, res, cap float64) int {
	n.checkParent(parent)
	id := len(n.nodes)
	n.nodes = append(n.nodes, netNode{parent: parent, res: res, cap: cap})
	n.nodes[parent].kids = append(n.nodes[parent].kids, id)
	return id
}

// AddBuffer appends a buffer node at the end of a wire of resistance res.
// The node's grounded cap is the buffer input capacitance; downstream of the
// returned node is a new stage driven by the buffer.
func (n *Network) AddBuffer(parent int, res float64, b tech.Buffer) int {
	n.checkParent(parent)
	id := len(n.nodes)
	n.nodes = append(n.nodes, netNode{parent: parent, res: res, cap: b.InputCap, buf: &b})
	n.nodes[parent].kids = append(n.nodes[parent].kids, id)
	return id
}

// AddSink appends a leaf node with the given wire resistance and pin cap.
func (n *Network) AddSink(parent int, res, pinCap float64) int {
	return n.AddWire(parent, res, pinCap)
}

func (n *Network) checkParent(parent int) {
	if parent < 0 || parent >= len(n.nodes) {
		panic(fmt.Sprintf("timing: invalid parent %d of %d", parent, len(n.nodes)))
	}
}

// SourceLoad returns the capacitance the root source drives: the unshielded
// cap of stage 0 (everything reachable from the root without crossing a
// buffer, plus the input caps of the buffers that terminate the stage). The
// hierarchical evaluator uses it to summarize a region subtree by the load
// its root presents to the top tree.
func (n *Network) SourceLoad() float64 {
	return n.stageLoads()[0]
}

// stageLoad computes, for every node, the capacitance visible to its stage
// driver looking downstream from (and including) that node. Buffers shield:
// a buffer node contributes only its input cap upstream.
func (n *Network) stageLoads() []float64 {
	load := make([]float64, len(n.nodes))
	// Children precede parents nowhere; nodes are appended after their
	// parents, so iterate in reverse for a valid postorder.
	for i := len(n.nodes) - 1; i >= 0; i-- {
		nd := &n.nodes[i]
		l := nd.cap
		for _, k := range nd.kids {
			if n.nodes[k].buf != nil {
				l += n.nodes[k].buf.InputCap
			} else {
				l += load[k]
			}
		}
		// A buffer node's own load[] value is what ITS OUTPUT drives:
		// children subtrees only (input cap belongs upstream).
		if nd.buf != nil {
			l -= nd.cap
		}
		load[i] = l
	}
	return load
}

// Delays returns the Elmore delay from the root source to every node.
// Buffer nodes report the delay at their OUTPUT (input arrival + gate
// delay); wire nodes report the delay at the node itself.
func (n *Network) Delays() []float64 {
	load := n.stageLoads()
	d := make([]float64, len(n.nodes))
	for i := 1; i < len(n.nodes); i++ {
		nd := &n.nodes[i]
		up := d[nd.parent]
		// Resistance from parent sees this node's shielded subtree cap.
		visible := load[i]
		if nd.buf != nil {
			visible = nd.buf.InputCap
		}
		at := up + nd.res*visible
		if nd.buf != nil {
			at += nd.buf.Delay(load[i])
		}
		d[i] = at
	}
	// Root stage driver resistance: model as extra series res on stage 0.
	if r := n.nodes[0].res; r != 0 {
		// Every node in stage 0 (reachable from root without crossing a
		// buffer) and every node beyond inherits the same source term
		// r × (stage-0 load).
		src := r * load[0]
		for i := 1; i < len(n.nodes); i++ {
			d[i] += src
		}
	}
	return d
}

// elmoreSeg returns the per-segment Elmore step used for slew degradation:
// the local RC time constant of the element that feeds node i.
func (n *Network) elmoreSeg(i int, load []float64) float64 {
	nd := &n.nodes[i]
	visible := load[i]
	if nd.buf != nil {
		visible = nd.buf.InputCap
	}
	return nd.res * visible
}

// Slews returns the transition time at every node using PERI propagation
// (slew_out² = slew_in² + step²) with wire step = ln9 · Elmore of the
// segment, and buffer output slew from the supplied table (nil table falls
// back to a linear model derived from the buffer parameters).
func (n *Network) Slews(inputSlew float64, tbl *NLDM) []float64 {
	load := n.stageLoads()
	s := make([]float64, len(n.nodes))
	s[0] = inputSlew
	const ln9 = 2.1972245773362196
	for i := 1; i < len(n.nodes); i++ {
		nd := &n.nodes[i]
		up := s[nd.parent]
		step := ln9 * n.elmoreSeg(i, load)
		at := math.Sqrt(up*up + step*step)
		if nd.buf != nil {
			if tbl != nil {
				at = tbl.Slew(at, load[i])
			} else {
				at = defaultOutSlew(*nd.buf, load[i])
			}
		}
		s[i] = at
	}
	return s
}

// DelaysNLDM returns per-node delays using NLDM gate lookup for buffers
// (delay depends on input slew and load) and Elmore for wires. This is the
// paper's evaluation mode ("the Elmore delay, the slew model and the NLDM
// for delay computation", Sec. IV-A).
func (n *Network) DelaysNLDM(inputSlew float64, tbl *NLDM) []float64 {
	load := n.stageLoads()
	d := make([]float64, len(n.nodes))
	s := make([]float64, len(n.nodes))
	s[0] = inputSlew
	const ln9 = 2.1972245773362196
	for i := 1; i < len(n.nodes); i++ {
		nd := &n.nodes[i]
		visible := load[i]
		if nd.buf != nil {
			visible = nd.buf.InputCap
		}
		step := nd.res * visible
		at := d[nd.parent] + step
		sl := math.Sqrt(s[nd.parent]*s[nd.parent] + (ln9*step)*(ln9*step))
		if nd.buf != nil {
			if tbl != nil {
				at += tbl.Delay(sl, load[i])
				sl = tbl.Slew(sl, load[i])
			} else {
				at += nd.buf.Delay(load[i])
				sl = defaultOutSlew(*nd.buf, load[i])
			}
		}
		d[i] = at
		s[i] = sl
	}
	if r := n.nodes[0].res; r != 0 {
		src := r * load[0]
		for i := 1; i < len(n.nodes); i++ {
			d[i] += src
		}
	}
	return d
}

// defaultOutSlew is the linear fallback output-slew model.
func defaultOutSlew(b tech.Buffer, load float64) float64 {
	const ln9 = 2.1972245773362196
	return ln9 * b.DriveRes * (load + 0.5)
}
