package timing

import (
	"fmt"
	"math"

	"dscts/internal/arena"
	"dscts/internal/tech"
)

// Network is a staged RC tree: wire/via elements hang off a root driver, and
// buffers open new stages. It is the evaluation backend used by
// internal/eval to compute per-sink latency and skew of a finished clock
// tree, independent of how the tree was constructed.
//
// Node 0 is always the root driver (the clock source). Every other node has
// a parent, a series resistance to its parent and a grounded capacitance.
// A node may carry a buffer: the buffer's input pin terminates the upstream
// stage (only Buffer.InputCap is visible upstream) and its output drives the
// node's children as a new stage.
//
// Storage is struct-of-arrays with index-based references: per-node lanes
// plus one shared buffer table, and a CSR child layout built lazily from the
// parent lane. Reset rewinds every lane in place, so an evaluator that keeps
// a Network in its scratch arena lowers and evaluates trees with no
// steady-state allocation. The CSR lists children in increasing node id —
// exactly the order the old per-node child slices accumulated in — so the
// floating-point summation order of the load accumulation (and with it every
// delay, slew and skew bit) is unchanged.
type Network struct {
	parent []int32
	res    []float64
	capv   []float64
	bufOf  []int32 // index into bufs, -1 = plain wire node
	bufs   []tech.Buffer

	// Lazily (re)built CSR over children: kidList[kidStart[i]:kidStart[i+1]]
	// are i's children in increasing id order.
	kidStart []int32
	kidList  []int32
	kidsOK   bool

	// load/slew are per-node scratch lanes shared by the evaluation entry
	// points; they never escape.
	load []float64
	slew []float64
}

// NewNetwork returns a network containing only the root driver node (id 0):
// an ideal source whose internal resistance rootRes is applied as a series
// term on stage 0.
func NewNetwork(rootRes float64) *Network {
	n := &Network{}
	n.Reset(rootRes)
	return n
}

// Reset rewinds the network to a lone root driver, keeping every lane's
// capacity so a scratch-resident Network relowers trees allocation-free.
func (n *Network) Reset(rootRes float64) {
	n.parent = append(n.parent[:0], -1)
	n.res = append(n.res[:0], rootRes)
	n.capv = append(n.capv[:0], 0)
	n.bufOf = append(n.bufOf[:0], -1)
	n.bufs = n.bufs[:0]
	n.kidsOK = false
}

// Grow pre-sizes the node lanes for n.Len()+extra nodes.
func (n *Network) Grow(extra int) {
	need := len(n.parent) + extra
	if cap(n.parent) >= need {
		return
	}
	n.parent = append(make([]int32, 0, need), n.parent...)
	n.res = append(make([]float64, 0, need), n.res...)
	n.capv = append(make([]float64, 0, need), n.capv...)
	n.bufOf = append(make([]int32, 0, need), n.bufOf...)
}

// Len returns the number of nodes including the root.
func (n *Network) Len() int { return len(n.parent) }

// Parent returns the parent node id of i (-1 for the root).
func (n *Network) Parent(i int) int { return int(n.parent[i]) }

func (n *Network) add(parent int, res, cap float64, buf int32) int {
	n.checkParent(parent)
	id := len(n.parent)
	n.parent = append(n.parent, int32(parent))
	n.res = append(n.res, res)
	n.capv = append(n.capv, cap)
	n.bufOf = append(n.bufOf, buf)
	n.kidsOK = false
	return id
}

// AddWire appends a node connected to parent through resistance res with
// grounded capacitance cap, returning its id.
func (n *Network) AddWire(parent int, res, cap float64) int {
	return n.add(parent, res, cap, -1)
}

// AddBuffer appends a buffer node at the end of a wire of resistance res.
// The node's grounded cap is the buffer input capacitance; downstream of the
// returned node is a new stage driven by the buffer.
func (n *Network) AddBuffer(parent int, res float64, b tech.Buffer) int {
	bi := int32(len(n.bufs))
	n.bufs = append(n.bufs, b)
	return n.add(parent, res, b.InputCap, bi)
}

// AddSink appends a leaf node with the given wire resistance and pin cap.
func (n *Network) AddSink(parent int, res, pinCap float64) int {
	return n.AddWire(parent, res, pinCap)
}

func (n *Network) checkParent(parent int) {
	if parent < 0 || parent >= len(n.parent) {
		panic(fmt.Sprintf("timing: invalid parent %d of %d", parent, len(n.parent)))
	}
}

// buildKids (re)derives the CSR child layout from the parent lane by
// counting sort over node ids, which lists every node's children in
// increasing id — the append order of the old per-node slices, preserving
// the load-summation FP order.
func (n *Network) buildKids() {
	if n.kidsOK {
		return
	}
	nn := len(n.parent)
	n.kidStart = arena.GrowZero(n.kidStart, nn+1)
	n.kidList = arena.Grow(n.kidList, nn-1)
	for i := 1; i < nn; i++ {
		n.kidStart[n.parent[i]+1]++
	}
	for i := 1; i <= nn; i++ {
		n.kidStart[i] += n.kidStart[i-1]
	}
	// kidStart now holds the bucket starts shifted one left; fill and
	// restore in one pass (kidStart[p] advances as p's children land).
	for i := 1; i < nn; i++ {
		p := n.parent[i]
		n.kidList[n.kidStart[p]] = int32(i)
		n.kidStart[p]++
	}
	for i := nn; i > 0; i-- {
		n.kidStart[i] = n.kidStart[i-1]
	}
	n.kidStart[0] = 0
	n.kidsOK = true
}

// SourceLoad returns the capacitance the root source drives: the unshielded
// cap of stage 0 (everything reachable from the root without crossing a
// buffer, plus the input caps of the buffers that terminate the stage). The
// hierarchical evaluator uses it to summarize a region subtree by the load
// its root presents to the top tree.
func (n *Network) SourceLoad() float64 {
	return n.stageLoads()[0]
}

// stageLoads computes, for every node, the capacitance visible to its stage
// driver looking downstream from (and including) that node. Buffers shield:
// a buffer node contributes only its input cap upstream. The result is the
// internal scratch lane, valid until the next evaluation call.
func (n *Network) stageLoads() []float64 {
	n.buildKids()
	nn := len(n.parent)
	n.load = arena.Grow(n.load, nn)
	load := n.load
	// Children precede parents nowhere; nodes are appended after their
	// parents, so iterate in reverse for a valid postorder.
	for i := nn - 1; i >= 0; i-- {
		l := n.capv[i]
		for _, k := range n.kidList[n.kidStart[i]:n.kidStart[i+1]] {
			if n.bufOf[k] >= 0 {
				l += n.bufs[n.bufOf[k]].InputCap
			} else {
				l += load[k]
			}
		}
		// A buffer node's own load[] value is what ITS OUTPUT drives:
		// children subtrees only (input cap belongs upstream).
		if n.bufOf[i] >= 0 {
			l -= n.capv[i]
		}
		load[i] = l
	}
	return load
}

// Delays returns the Elmore delay from the root source to every node.
// Buffer nodes report the delay at their OUTPUT (input arrival + gate
// delay); wire nodes report the delay at the node itself.
func (n *Network) Delays() []float64 {
	return n.DelaysInto(nil)
}

// DelaysInto is Delays writing into dst (grown as needed), so arena-backed
// callers evaluate without allocating the result.
func (n *Network) DelaysInto(dst []float64) []float64 {
	load := n.stageLoads()
	nn := len(n.parent)
	d := arena.GrowZero(dst, nn)
	for i := 1; i < nn; i++ {
		up := d[n.parent[i]]
		// Resistance from parent sees this node's shielded subtree cap.
		visible := load[i]
		bi := n.bufOf[i]
		if bi >= 0 {
			visible = n.bufs[bi].InputCap
		}
		at := up + n.res[i]*visible
		if bi >= 0 {
			at += n.bufs[bi].Delay(load[i])
		}
		d[i] = at
	}
	// Root stage driver resistance: model as extra series res on stage 0.
	if r := n.res[0]; r != 0 {
		// Every node in stage 0 (reachable from root without crossing a
		// buffer) and every node beyond inherits the same source term
		// r × (stage-0 load).
		src := r * load[0]
		for i := 1; i < nn; i++ {
			d[i] += src
		}
	}
	return d
}

// elmoreSeg returns the per-segment Elmore step used for slew degradation:
// the local RC time constant of the element that feeds node i.
func (n *Network) elmoreSeg(i int, load []float64) float64 {
	visible := load[i]
	if bi := n.bufOf[i]; bi >= 0 {
		visible = n.bufs[bi].InputCap
	}
	return n.res[i] * visible
}

// Slews returns the transition time at every node using PERI propagation
// (slew_out² = slew_in² + step²) with wire step = ln9 · Elmore of the
// segment, and buffer output slew from the supplied table (nil table falls
// back to a linear model derived from the buffer parameters).
func (n *Network) Slews(inputSlew float64, tbl *NLDM) []float64 {
	return n.SlewsInto(nil, inputSlew, tbl)
}

// SlewsInto is Slews writing into dst (grown as needed).
func (n *Network) SlewsInto(dst []float64, inputSlew float64, tbl *NLDM) []float64 {
	load := n.stageLoads()
	nn := len(n.parent)
	s := arena.GrowZero(dst, nn)
	s[0] = inputSlew
	const ln9 = 2.1972245773362196
	for i := 1; i < nn; i++ {
		up := s[n.parent[i]]
		step := ln9 * n.elmoreSeg(i, load)
		at := math.Sqrt(up*up + step*step)
		if bi := n.bufOf[i]; bi >= 0 {
			if tbl != nil {
				at = tbl.Slew(at, load[i])
			} else {
				at = defaultOutSlew(n.bufs[bi], load[i])
			}
		}
		s[i] = at
	}
	return s
}

// DelaysNLDM returns per-node delays using NLDM gate lookup for buffers
// (delay depends on input slew and load) and Elmore for wires. This is the
// paper's evaluation mode ("the Elmore delay, the slew model and the NLDM
// for delay computation", Sec. IV-A).
func (n *Network) DelaysNLDM(inputSlew float64, tbl *NLDM) []float64 {
	return n.DelaysNLDMInto(nil, inputSlew, tbl)
}

// DelaysNLDMInto is DelaysNLDM writing into dst (grown as needed). The slew
// lane rides in internal scratch.
func (n *Network) DelaysNLDMInto(dst []float64, inputSlew float64, tbl *NLDM) []float64 {
	load := n.stageLoads()
	nn := len(n.parent)
	d := arena.GrowZero(dst, nn)
	n.slew = arena.GrowZero(n.slew, nn)
	s := n.slew
	s[0] = inputSlew
	const ln9 = 2.1972245773362196
	for i := 1; i < nn; i++ {
		visible := load[i]
		bi := n.bufOf[i]
		if bi >= 0 {
			visible = n.bufs[bi].InputCap
		}
		step := n.res[i] * visible
		at := d[n.parent[i]] + step
		sl := math.Sqrt(s[n.parent[i]]*s[n.parent[i]] + (ln9*step)*(ln9*step))
		if bi >= 0 {
			if tbl != nil {
				at += tbl.Delay(sl, load[i])
				sl = tbl.Slew(sl, load[i])
			} else {
				at += n.bufs[bi].Delay(load[i])
				sl = defaultOutSlew(n.bufs[bi], load[i])
			}
		}
		d[i] = at
		s[i] = sl
	}
	if r := n.res[0]; r != 0 {
		src := r * load[0]
		for i := 1; i < nn; i++ {
			d[i] += src
		}
	}
	return d
}

// defaultOutSlew is the linear fallback output-slew model.
func defaultOutSlew(b tech.Buffer, load float64) float64 {
	const ln9 = 2.1972245773362196
	return ln9 * b.DriveRes * (load + 0.5)
}
