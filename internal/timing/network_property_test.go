package timing

import (
	"math"
	"math/rand"
	"testing"

	"dscts/internal/tech"
)

// randomNetwork builds a random staged RC tree and returns it with the ids
// of its leaf nodes.
func randomNetwork(rng *rand.Rand, tc *tech.Tech) (*Network, []int) {
	n := NewNetwork(0)
	ids := []int{0}
	var leaves []int
	size := rng.Intn(40) + 2
	for i := 0; i < size; i++ {
		parent := ids[rng.Intn(len(ids))]
		switch rng.Intn(4) {
		case 0:
			id := n.AddBuffer(parent, rng.Float64()*3, tc.Buf)
			ids = append(ids, id)
		default:
			id := n.AddWire(parent, rng.Float64()*3, rng.Float64()*5)
			ids = append(ids, id)
			leaves = append(leaves, id)
		}
	}
	return n, leaves
}

// Delays are always non-negative and grow monotonically along every
// root-to-node path (resistances and caps are non-negative).
func TestNetworkDelaysMonotoneAlongPaths(t *testing.T) {
	tc := tech.ASAP7()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n, _ := randomNetwork(rng, tc)
		d := n.Delays()
		for i := 1; i < n.Len(); i++ {
			if d[i] < 0 {
				t.Fatalf("negative delay %v at node %d", d[i], i)
			}
			p := n.Parent(i)
			if d[i]+1e-12 < d[p] {
				t.Fatalf("delay decreased along path: node %d (%v) < parent %d (%v)", i, d[i], p, d[p])
			}
		}
	}
}

// Adding load anywhere never speeds up any node (Elmore monotonicity).
func TestNetworkDelayMonotoneInAddedLoad(t *testing.T) {
	tc := tech.ASAP7()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n, _ := randomNetwork(rng, tc)
		before := n.Delays()
		// Attach extra cap to a random node.
		target := rng.Intn(n.Len())
		n.AddWire(target, 0.1, 5)
		after := n.Delays()
		for i := range before {
			if after[i]+1e-12 < before[i] {
				t.Fatalf("adding load sped up node %d: %v -> %v", i, before[i], after[i])
			}
		}
	}
}

// NLDM delays dominate Elmore delays on the same network (the synthesized
// table adds slew penalty and curvature, never subtracts).
func TestNetworkNLDMDominatesElmore(t *testing.T) {
	tc := tech.ASAP7()
	tbl := SynthesizeNLDM(tc.Buf)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n, _ := randomNetwork(rng, tc)
		el := n.Delays()
		nl := n.DelaysNLDM(5, tbl)
		for i := range el {
			if nl[i]+1e-9 < el[i] {
				t.Fatalf("NLDM %v below Elmore %v at node %d", nl[i], el[i], i)
			}
		}
	}
}

// Slews are finite, non-negative, and bounded on any random network.
func TestNetworkSlewsSane(t *testing.T) {
	tc := tech.ASAP7()
	tbl := SynthesizeNLDM(tc.Buf)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n, _ := randomNetwork(rng, tc)
		for _, tb := range []*NLDM{nil, tbl} {
			s := n.Slews(5, tb)
			for i, v := range s {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) || v > 1e6 {
					t.Fatalf("slew %v at node %d (table=%v)", v, i, tb != nil)
				}
			}
		}
	}
}

// Buffer shielding: increasing load BEHIND a buffer must not change the
// delay at the buffer's input side beyond the gate itself.
func TestNetworkShieldingProperty(t *testing.T) {
	tc := tech.ASAP7()
	mk := func(extra float64) (float64, float64) {
		n := NewNetwork(0)
		a := n.AddWire(0, 2, 3)
		buf := n.AddBuffer(a, 1, tc.Buf)
		n.AddWire(buf, 1, 10+extra)
		d := n.Delays()
		return d[a], d[buf]
	}
	a0, b0 := mk(0)
	a1, b1 := mk(50)
	if a0 != a1 {
		t.Fatalf("upstream delay changed with shielded load: %v vs %v", a0, a1)
	}
	if b1 <= b0 {
		t.Fatalf("buffer output delay must grow with its load: %v vs %v", b0, b1)
	}
}
