// Package timing implements the delay models of the paper: the classic
// L-type Elmore wire model (Sec. II-B, Eqs. (1)-(2)), the linear buffer gate
// model used during optimization, PERI slew propagation ([34] in the paper)
// and NLDM-style lookup tables ([32]) used for final evaluation, plus a
// general staged RC-network evaluator for full clock trees.
//
// In the L-type model a wire segment of length L on a layer with unit
// resistance r and unit capacitance c is a series resistance rL followed by
// a grounded capacitance cL at its far (downstream) node. The Elmore delay
// through the segment driving an additional downstream load Cd is therefore
//
//	D = rL·(cL + Cd)
//
// which is exactly the convention that makes the paper's Eq. (1) and Eq. (2)
// expansions come out.
package timing

import "dscts/internal/tech"

// WireCap returns the total capacitance a segment of length L on layer l
// presents to its driver, including the downstream load Cd behind it.
func WireCap(l tech.Layer, length, cd float64) float64 {
	return l.UnitCap*length + cd
}

// WireDelay returns the L-model Elmore delay through a segment of length L
// on layer l driving downstream load Cd.
func WireDelay(l tech.Layer, length, cd float64) float64 {
	return l.UnitRes * length * (l.UnitCap*length + cd)
}

// BufOnWireDelay is the paper's Eq. (1): the source-to-sink delay of a
// front-side segment of length L with one buffer inserted at its middle,
// using a constant buffer delay Dbuf. Provided as the reference formula the
// DP's P1 pattern is validated against (the DP itself uses the linear gate
// model, which reduces to Eq. (1) when DriveRes·load is folded into Dbuf).
func BufOnWireDelay(front tech.Layer, length, cb, cd, dbuf float64) float64 {
	rf, cf := front.UnitRes, front.UnitCap
	h := length / 2
	return rf*h*(cf*h+cb) + dbuf + rf*h*(cf*h+cd)
}

// NTSVOnWireDelay is the paper's Eq. (2): the delay of a segment of length L
// moved to the back side with one nTSV at each endpoint, driving load Cd.
// Topology: source -[R_tsv]- (C_tsv) -[r_b·L]- (c_b·L) -[R_tsv]- (C_tsv+Cd).
func NTSVOnWireDelay(back tech.Layer, tsv tech.NTSV, length, cd float64) float64 {
	rb, cb := back.UnitRes, back.UnitCap
	first := tsv.Res * (2*tsv.Cap + cb*length + cd)
	wire := rb * length * (cb*length + tsv.Cap + cd)
	last := tsv.Res * (tsv.Cap + cd)
	return first + wire + last
}

// NTSVOnWireCap returns the capacitance Eq. (2)'s structure presents to its
// driver: both nTSV caps plus the back wire and the downstream load.
func NTSVOnWireCap(back tech.Layer, tsv tech.NTSV, length, cd float64) float64 {
	return 2*tsv.Cap + back.UnitCap*length + cd
}

// SingleNTSVDownDelay models one nTSV at the downstream end of a back-side
// segment (pattern P5 in Fig. 6: root-side endpoint on the back side, the
// nTSV flips to the front just before the sink-side endpoint).
// Topology: source -[r_b·L]- (c_b·L) -[R_tsv]- (C_tsv + Cd).
func SingleNTSVDownDelay(back tech.Layer, tsv tech.NTSV, length, cd float64) float64 {
	rb, cb := back.UnitRes, back.UnitCap
	return rb*length*(cb*length+tsv.Cap+cd) + tsv.Res*(tsv.Cap+cd)
}

// SingleNTSVDownCap returns the driver-visible capacitance of the P5
// structure.
func SingleNTSVDownCap(back tech.Layer, tsv tech.NTSV, length, cd float64) float64 {
	return back.UnitCap*length + tsv.Cap + cd
}

// SingleNTSVUpDelay models one nTSV at the upstream end of a back-side
// segment (pattern P6 in Fig. 6: root-side endpoint on the front side, the
// wire dives to the back immediately).
// Topology: source -[R_tsv]- (C_tsv) -[r_b·L]- (c_b·L + Cd).
func SingleNTSVUpDelay(back tech.Layer, tsv tech.NTSV, length, cd float64) float64 {
	rb, cb := back.UnitRes, back.UnitCap
	return tsv.Res*(tsv.Cap+cb*length+cd) + rb*length*(cb*length+cd)
}

// SingleNTSVUpCap returns the driver-visible capacitance of the P6 structure.
func SingleNTSVUpCap(back tech.Layer, tsv tech.NTSV, length, cd float64) float64 {
	return tsv.Cap + back.UnitCap*length + cd
}
