package timing

import (
	"math"
	"math/rand"
	"testing"

	"dscts/internal/tech"
)

func asap7() *tech.Tech { return tech.ASAP7() }

// Eq. (1) of the paper, expanded form: D = (rf·cf/2)L² + rf(Cb+Cd)/2·L + Dbuf.
func TestEq1Expansion(t *testing.T) {
	tc := asap7()
	front := tc.Front()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		L := rng.Float64()*200 + 1
		cb := rng.Float64() * 5
		cd := rng.Float64() * 50
		dbuf := rng.Float64() * 30
		got := BufOnWireDelay(front, L, cb, cd, dbuf)
		rf, cf := front.UnitRes, front.UnitCap
		want := rf*cf/2*L*L + rf*(cb+cd)/2*L + dbuf
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("Eq1 mismatch L=%v: got %v want %v", L, got, want)
		}
	}
}

// Eq. (2) of the paper, expanded form:
// D = (rb·cb)L² + (rb·Ct + rb·Cd + Rt·cb)L + Rt(3Ct + 2Cd).
func TestEq2Expansion(t *testing.T) {
	tc := asap7()
	back := tc.Back()
	tsv := tc.TSV
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		L := rng.Float64()*500 + 1
		cd := rng.Float64() * 50
		got := NTSVOnWireDelay(back, tsv, L, cd)
		rb, cb := back.UnitRes, back.UnitCap
		rt, ct := tsv.Res, tsv.Cap
		want := rb*cb*L*L + (rb*ct+rb*cd+rt*cb)*L + rt*(3*ct+2*cd)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("Eq2 mismatch L=%v: got %v want %v", L, got, want)
		}
	}
}

func TestBackSideBeatsFrontOnLongWires(t *testing.T) {
	tc := asap7()
	// For long wires the back-side quadratic term rb·cb << rf·cf dominates:
	// moving the wire back (even paying two nTSVs) must win.
	for _, L := range []float64{50, 100, 200, 400} {
		cd := 10.0
		front := WireDelay(tc.Front(), L, cd)
		back := NTSVOnWireDelay(tc.Back(), tc.TSV, L, cd)
		if back >= front {
			t.Errorf("L=%v: back %v >= front %v", L, back, front)
		}
	}
}

func TestSingleNTSVModels(t *testing.T) {
	tc := asap7()
	back, tsv := tc.Back(), tc.TSV
	L, cd := 100.0, 8.0
	// P5 and P6 have one nTSV; their delays must lie strictly below the
	// two-nTSV P4 delay plus one tsv worth of margin, and their caps differ
	// from P4 by exactly one tsv cap.
	p4c := NTSVOnWireCap(back, tsv, L, cd)
	p5c := SingleNTSVDownCap(back, tsv, L, cd)
	p6c := SingleNTSVUpCap(back, tsv, L, cd)
	if math.Abs(p4c-p5c-tsv.Cap) > 1e-12 || math.Abs(p4c-p6c-tsv.Cap) > 1e-12 {
		t.Errorf("cap bookkeeping wrong: p4=%v p5=%v p6=%v tsv=%v", p4c, p5c, p6c, tsv.Cap)
	}
	p4 := NTSVOnWireDelay(back, tsv, L, cd)
	p5 := SingleNTSVDownDelay(back, tsv, L, cd)
	p6 := SingleNTSVUpDelay(back, tsv, L, cd)
	if p5 >= p4 || p6 >= p4 {
		t.Errorf("one-tsv delay should be below two-tsv: p4=%v p5=%v p6=%v", p4, p5, p6)
	}
}

func TestWireDelayCapBasics(t *testing.T) {
	l := tech.Layer{Name: "T", UnitRes: 2, UnitCap: 3}
	if got := WireCap(l, 10, 5); got != 35 {
		t.Errorf("WireCap = %v, want 35", got)
	}
	if got := WireDelay(l, 10, 5); got != 2*10*(3*10+5) {
		t.Errorf("WireDelay = %v", got)
	}
}

func TestNetworkSingleWire(t *testing.T) {
	// root --R=2-- node(C=3) : delay = 2*3 = 6.
	n := NewNetwork(0)
	id := n.AddWire(0, 2, 3)
	d := n.Delays()
	if math.Abs(d[id]-6) > 1e-12 {
		t.Fatalf("delay = %v, want 6", d[id])
	}
}

func TestNetworkChainMatchesHandElmore(t *testing.T) {
	// root -R1- a(C1) -R2- b(C2): d(a)=R1(C1+C2), d(b)=d(a)+R2·C2.
	n := NewNetwork(0)
	a := n.AddWire(0, 1.5, 2)
	b := n.AddWire(a, 2.5, 4)
	d := n.Delays()
	wantA := 1.5 * (2 + 4)
	wantB := wantA + 2.5*4
	if math.Abs(d[a]-wantA) > 1e-12 || math.Abs(d[b]-wantB) > 1e-12 {
		t.Fatalf("chain delays %v/%v want %v/%v", d[a], d[b], wantA, wantB)
	}
}

func TestNetworkBufferShielding(t *testing.T) {
	tc := asap7()
	buf := tc.Buf
	// root -R- buf -0- bigload(C). Upstream resistance must see only the
	// buffer input cap, not the big load.
	n := NewNetwork(0)
	bid := n.AddBuffer(0, 10, buf)
	n.AddWire(bid, 0, 100)
	d := n.Delays()
	want := 10*buf.InputCap + buf.Delay(100)
	if math.Abs(d[bid]-want) > 1e-9 {
		t.Fatalf("buffer output delay %v want %v", d[bid], want)
	}
}

func TestNetworkBranchSkew(t *testing.T) {
	// Symmetric branches must have zero skew; lengthening one branch's
	// resistance must slow only that branch.
	n := NewNetwork(0)
	tr := n.AddWire(0, 1, 1)
	l1 := n.AddSink(tr, 2, 1)
	l2 := n.AddSink(tr, 2, 1)
	d := n.Delays()
	if math.Abs(d[l1]-d[l2]) > 1e-12 {
		t.Fatalf("symmetric skew %v", d[l1]-d[l2])
	}
	n2 := NewNetwork(0)
	tr2 := n2.AddWire(0, 1, 1)
	a := n2.AddSink(tr2, 2, 1)
	b := n2.AddSink(tr2, 5, 1)
	d2 := n2.Delays()
	if d2[b] <= d2[a] {
		t.Fatalf("longer branch not slower: %v vs %v", d2[a], d2[b])
	}
	// Shared trunk: both branch delays include trunk res × total cap.
	wantShared := 1.0 * (1 + 1 + 1)
	if math.Abs((d2[a]-2*1)-wantShared) > 1e-12 {
		t.Errorf("trunk term wrong: %v", d2[a])
	}
}

func TestNetworkRootResistance(t *testing.T) {
	n := NewNetwork(3)
	a := n.AddWire(0, 0, 2)
	d := n.Delays()
	if math.Abs(d[a]-3*2) > 1e-12 {
		t.Fatalf("root res term = %v, want 6", d[a])
	}
}

func TestSlewMonotoneAlongPath(t *testing.T) {
	n := NewNetwork(0)
	a := n.AddWire(0, 1, 2)
	b := n.AddWire(a, 1, 2)
	c := n.AddWire(b, 1, 2)
	s := n.Slews(5, nil)
	if !(s[a] >= 5 && s[b] >= s[a] && s[c] >= s[b]) {
		t.Fatalf("wire slew must degrade monotonically: %v", s)
	}
}

func TestSlewBufferRestores(t *testing.T) {
	tc := asap7()
	n := NewNetwork(0)
	a := n.AddWire(0, 50, 20) // badly degraded slew
	bid := n.AddBuffer(a, 0, tc.Buf)
	sink := n.AddSink(bid, 1, 1)
	s := n.Slews(5, nil)
	if s[sink] >= s[a] {
		t.Fatalf("buffer should restore slew: before %v after %v", s[a], s[sink])
	}
}

func TestNLDMInterpolation(t *testing.T) {
	tbl := SynthesizeNLDM(asap7().Buf)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exact grid points must return the stored values.
	for i, s := range tbl.SlewAxis {
		for j, l := range tbl.LoadAxis {
			if got := tbl.Delay(s, l); math.Abs(got-tbl.CellDly[i][j]) > 1e-9 {
				t.Fatalf("grid point (%v,%v) = %v want %v", s, l, got, tbl.CellDly[i][j])
			}
		}
	}
	// Interpolated values must lie between the bracketing corners.
	s, l := 7.5, 3.0
	got := tbl.Delay(s, l)
	lo := math.Min(math.Min(tbl.Delay(5, 2), tbl.Delay(5, 4)), math.Min(tbl.Delay(10, 2), tbl.Delay(10, 4)))
	hi := math.Max(math.Max(tbl.Delay(5, 2), tbl.Delay(5, 4)), math.Max(tbl.Delay(10, 2), tbl.Delay(10, 4)))
	if got < lo-1e-9 || got > hi+1e-9 {
		t.Fatalf("interpolation out of bounds: %v not in [%v,%v]", got, lo, hi)
	}
	// Clamped extrapolation must not explode.
	if d := tbl.Delay(1000, 1000); d < tbl.Delay(160, 64) {
		t.Error("clamping should saturate at the corner")
	}
	if d := tbl.Delay(-5, -5); math.Abs(d-tbl.CellDly[0][0]) > 1e-9 {
		t.Errorf("low clamp = %v want %v", d, tbl.CellDly[0][0])
	}
}

func TestNLDMMonotoneInLoad(t *testing.T) {
	tbl := SynthesizeNLDM(asap7().Buf)
	prev := -1.0
	for l := 0.5; l <= 64; l += 0.5 {
		d := tbl.Delay(10, l)
		if d <= prev {
			t.Fatalf("NLDM delay not increasing in load at %v", l)
		}
		prev = d
	}
}

func TestNLDMValidateErrors(t *testing.T) {
	tbl := SynthesizeNLDM(asap7().Buf)
	bad := *tbl
	bad.SlewAxis = []float64{1}
	if bad.Validate() == nil {
		t.Error("short axis should fail")
	}
	bad2 := *tbl
	bad2.SlewAxis = append([]float64{}, tbl.SlewAxis...)
	bad2.SlewAxis[0], bad2.SlewAxis[1] = bad2.SlewAxis[1], bad2.SlewAxis[0]
	if bad2.Validate() == nil {
		t.Error("unsorted axis should fail")
	}
	bad3 := *tbl
	bad3.CellDly = tbl.CellDly[:2]
	if bad3.Validate() == nil {
		t.Error("row mismatch should fail")
	}
}

func TestDelaysNLDMCloseToElmoreForSmallSlew(t *testing.T) {
	tc := asap7()
	tbl := SynthesizeNLDM(tc.Buf)
	n := NewNetwork(0)
	a := n.AddWire(0, 2, 5)
	bid := n.AddBuffer(a, 1, tc.Buf)
	s := n.AddSink(bid, 2, 3)
	el := n.Delays()
	nl := n.DelaysNLDM(2, tbl)
	// With tiny input slew the table reduces to the linear model within the
	// synthesized slew penalty (0.15·slew) and curvature terms.
	if math.Abs(el[s]-nl[s]) > 0.15*20+0.002*64*64 {
		t.Fatalf("NLDM diverges from Elmore: %v vs %v", el[s], nl[s])
	}
	if nl[s] <= 0 || el[s] <= 0 {
		t.Fatal("non-positive delays")
	}
}

func TestNetworkPanicsOnBadParent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n := NewNetwork(0)
	n.AddWire(5, 1, 1)
}
