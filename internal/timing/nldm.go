package timing

import (
	"fmt"
	"sort"

	"dscts/internal/tech"
)

// NLDM is a nonlinear delay model table for a gate: cell delay and output
// slew indexed by (input slew, output load), with bilinear interpolation
// inside the grid and clamped extrapolation outside, matching how Liberty
// NLDM tables are evaluated by STA engines.
type NLDM struct {
	SlewAxis []float64 // ps, ascending
	LoadAxis []float64 // fF, ascending
	CellDly  [][]float64
	OutSlew  [][]float64
}

// SynthesizeNLDM builds an NLDM table around the linear buffer model, adding
// the mild slew dependence and load curvature real 7-nm libraries exhibit.
// The table reduces to the linear model at zero input slew and small load,
// so optimization (linear model) and evaluation (table) agree to first
// order. This stands in for the ASAP7 Liberty data (see DESIGN.md §1).
func SynthesizeNLDM(b tech.Buffer) *NLDM {
	slews := []float64{2, 5, 10, 20, 40, 80, 160}
	loads := []float64{0.5, 1, 2, 4, 8, 16, 32, 64}
	t := &NLDM{SlewAxis: slews, LoadAxis: loads}
	t.CellDly = make([][]float64, len(slews))
	t.OutSlew = make([][]float64, len(slews))
	for i, s := range slews {
		t.CellDly[i] = make([]float64, len(loads))
		t.OutSlew[i] = make([]float64, len(loads))
		for j, l := range loads {
			// Slew adds ~15% of itself to delay; load curvature grows
			// quadratically but stays small inside MaxCap.
			t.CellDly[i][j] = b.Intrinsic + b.DriveRes*l + 0.15*s + 0.002*l*l
			t.OutSlew[i][j] = defaultOutSlew(b, l) + 0.10*s
		}
	}
	return t
}

// Delay returns the interpolated cell delay for the given input slew (ps)
// and output load (fF).
func (t *NLDM) Delay(slew, load float64) float64 {
	return t.lookup(t.CellDly, slew, load)
}

// Slew returns the interpolated output slew.
func (t *NLDM) Slew(slew, load float64) float64 {
	return t.lookup(t.OutSlew, slew, load)
}

// Validate checks table shape and axis monotonicity.
func (t *NLDM) Validate() error {
	if len(t.SlewAxis) < 2 || len(t.LoadAxis) < 2 {
		return fmt.Errorf("nldm: need at least 2x2 table, got %dx%d", len(t.SlewAxis), len(t.LoadAxis))
	}
	if !sort.Float64sAreSorted(t.SlewAxis) || !sort.Float64sAreSorted(t.LoadAxis) {
		return fmt.Errorf("nldm: axes must be ascending")
	}
	if len(t.CellDly) != len(t.SlewAxis) || len(t.OutSlew) != len(t.SlewAxis) {
		return fmt.Errorf("nldm: row count mismatch")
	}
	for i := range t.CellDly {
		if len(t.CellDly[i]) != len(t.LoadAxis) || len(t.OutSlew[i]) != len(t.LoadAxis) {
			return fmt.Errorf("nldm: column count mismatch at row %d", i)
		}
	}
	return nil
}

func (t *NLDM) lookup(grid [][]float64, slew, load float64) float64 {
	i, fi := axisLocate(t.SlewAxis, slew)
	j, fj := axisLocate(t.LoadAxis, load)
	v00 := grid[i][j]
	v01 := grid[i][j+1]
	v10 := grid[i+1][j]
	v11 := grid[i+1][j+1]
	return v00*(1-fi)*(1-fj) + v01*(1-fi)*fj + v10*fi*(1-fj) + v11*fi*fj
}

// axisLocate finds the lower bracketing index and interpolation fraction for
// v on an ascending axis, clamping outside the range.
func axisLocate(axis []float64, v float64) (int, float64) {
	n := len(axis)
	if v <= axis[0] {
		return 0, 0
	}
	if v >= axis[n-1] {
		return n - 2, 1
	}
	k := sort.SearchFloat64s(axis, v)
	// axis[k-1] < v <= axis[k]
	lo := k - 1
	f := (v - axis[lo]) / (axis[lo+1] - axis[lo])
	return lo, f
}
