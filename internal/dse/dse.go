// Package dse implements the design-space exploration flow of Sec. III-E:
// sweeping the fanout threshold that switches DP nodes between full and
// intra-side inserting modes, sweeping the baselines' knobs for comparison
// (fanout threshold of [7], criticality fraction of [6]), and extracting
// Pareto frontiers over the multi-objective space (Sec. II-C).
package dse

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"dscts/internal/baseline"
	"dscts/internal/core"
	"dscts/internal/corner"
	"dscts/internal/ctree"
	"dscts/internal/eval"
	"dscts/internal/geom"
	"dscts/internal/par"
	"dscts/internal/tech"
)

// Point is one explored solution in the objective space.
type Point struct {
	Flow    string  // which flow produced it
	Param   float64 // the swept knob value (threshold or fraction)
	Latency float64
	Skew    float64
	Bufs    int
	TSVs    int
	WL      float64
}

// Resources returns the combined resource axis of Fig. 12 (#buffers+#nTSVs).
func (p Point) Resources() int { return p.Bufs + p.TSVs }

// SweepFanout runs the paper's DSE flow: the full synthesis with the DP
// inserting modes controlled by each fanout threshold (Sec. IV-E sweeps 20
// to 1000 step 10). Sweep points are independent whole syntheses, so they
// run concurrently — base.Workers (0 = all CPUs) bounds the total budget,
// split between the sweep fan-out and each point's inner phases. Results
// are indexed by threshold position, so the output order (and, since
// every phase is deterministic, the output itself) is identical for every
// worker count.
func SweepFanout(root geom.Point, sinks []geom.Point, tc *tech.Tech, thresholds []int, base core.Options) ([]Point, error) {
	return SweepFanoutContext(context.Background(), root, sinks, tc, thresholds, base)
}

// SweepFanoutContext is SweepFanout with cancellation: the context is
// threaded into every sweep point's synthesis, so a cancelled sweep stops
// mid-phase inside whichever points are in flight and skips the rest,
// returning an error wrapping ctx.Err(). If base.Progress is set it
// receives one core.PhaseSweep event per completed point (with the
// completed/total counts) instead of the points' inner phase events, which
// would interleave meaninglessly across concurrent syntheses.
func SweepFanoutContext(ctx context.Context, root geom.Point, sinks []geom.Point, tc *tech.Tech, thresholds []int, base core.Options) ([]Point, error) {
	out := make([]Point, len(thresholds))
	err := sweepFanout(ctx, root, sinks, tc, thresholds, nil, base, func(i int, o *core.Outcome) {
		out[i] = fromMetrics("ours-dse", float64(thresholds[i]), o.Metrics)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sweepFanout is the engine shared by SweepFanoutContext and
// SweepFanoutCorners: a concurrent threshold sweep with the worker budget
// split between the fan-out and each point's inner phases (so short
// sweeps on wide machines still saturate), fail-fast abort, and one
// PhaseSweep progress event per completed point. Each point's Outcome is
// handed to record(i, o) with i the threshold index; record runs
// concurrently across points and must only touch index-disjoint state.
// The corner set is forced on every point — nil for plain sweeps, so a
// caller's base.Corners can never smuggle discarded per-point sign-off
// work into a sweep that has nowhere to report it.
func sweepFanout(ctx context.Context, root geom.Point, sinks []geom.Point, tc *tech.Tech, thresholds []int, corners []corner.Corner, base core.Options, record func(i int, o *core.Outcome)) error {
	if len(thresholds) == 0 {
		return fmt.Errorf("dse: no thresholds")
	}
	workers := par.N(base.Workers)
	inner := workers / len(thresholds)
	if inner < 1 {
		inner = 1
	}
	progress := base.Progress
	var completed atomic.Int64
	errs := make([]error, len(thresholds))
	// On failure the sweep aborts instead of paying for the remaining
	// points; which error surfaces may then depend on timing, but the
	// success path stays fully deterministic.
	var failed atomic.Bool
	par.ForEach(workers, len(thresholds), func(i int) {
		if failed.Load() || ctx.Err() != nil {
			return
		}
		opt := base
		opt.FanoutThreshold = thresholds[i]
		opt.Workers = inner
		opt.Progress = nil
		opt.Corners = corners
		o, err := core.SynthesizeContext(ctx, root, sinks, tc, opt)
		if err != nil {
			errs[i] = fmt.Errorf("dse: threshold %d: %w", thresholds[i], err)
			failed.Store(true)
			return
		}
		record(i, o)
		if progress != nil {
			progress(core.Progress{
				Phase: core.PhaseSweep, Done: true,
				Point: int(completed.Add(1)), Total: len(thresholds),
			})
		}
	})
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("dse: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Thresholds builds an inclusive integer sweep [lo, hi] with the given step.
func Thresholds(lo, hi, step int) []int {
	if step <= 0 || hi < lo {
		return nil
	}
	var out []int
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out
}

// Fractions builds an inclusive float sweep [lo, hi] with the given step.
func Fractions(lo, hi, step float64) []float64 {
	if step <= 0 || hi < lo {
		return nil
	}
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, v)
	}
	return out
}

// SweepFanoutFlip applies baseline [7] to clones of a buffered clock tree
// for each threshold, one concurrent clone per point (workers <= 0 means
// all CPUs). Result order follows the threshold order regardless of the
// worker count.
func SweepFanoutFlip(buffered *ctree.Tree, tc *tech.Tech, thresholds []int, workers int) ([]Point, error) {
	out := make([]Point, len(thresholds))
	errs := make([]error, len(thresholds))
	var failed atomic.Bool
	par.ForEach(workers, len(thresholds), func(i int) {
		if failed.Load() {
			return
		}
		th := thresholds[i]
		tr := buffered.Clone()
		if _, err := baseline.FanoutFlip(tr, th); err != nil {
			errs[i] = fmt.Errorf("dse: fanout flip %d: %w", th, err)
			failed.Store(true)
			return
		}
		m, err := eval.New(tc, eval.Elmore).Evaluate(tr)
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		out[i] = fromMetrics("buffered+[7]", float64(th), m)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepCriticalFlip applies baseline [6] to clones of a buffered clock tree
// for each criticality fraction, one concurrent clone per point (workers
// <= 0 means all CPUs). Result order follows the fraction order regardless
// of the worker count.
func SweepCriticalFlip(buffered *ctree.Tree, tc *tech.Tech, fractions []float64, workers int) ([]Point, error) {
	out := make([]Point, len(fractions))
	errs := make([]error, len(fractions))
	var failed atomic.Bool
	par.ForEach(workers, len(fractions), func(i int) {
		if failed.Load() {
			return
		}
		q := fractions[i]
		tr := buffered.Clone()
		if _, err := baseline.CriticalFlip(tr, tc, q); err != nil {
			errs[i] = fmt.Errorf("dse: critical flip %g: %w", q, err)
			failed.Store(true)
			return
		}
		m, err := eval.New(tc, eval.Elmore).Evaluate(tr)
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		out[i] = fromMetrics("buffered+[6]", q, m)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func fromMetrics(flow string, param float64, m *eval.Metrics) Point {
	return Point{
		Flow: flow, Param: param,
		Latency: m.Latency, Skew: m.Skew,
		Bufs: m.Buffers, TSVs: m.NTSVs, WL: m.WL,
	}
}

// Objective extracts a minimized objective value from a point.
type Objective func(Point) float64

// Latency, Skew and Resources are the Fig. 12 axes.
var (
	Latency   Objective = func(p Point) float64 { return p.Latency }
	Skew      Objective = func(p Point) float64 { return p.Skew }
	Resources Objective = func(p Point) float64 { return float64(p.Resources()) }
)

// Pareto returns the non-dominated subset of pts under the given minimized
// objectives, sorted by the first objective. A point is dominated if some
// other point is no worse in every objective and strictly better in one.
func Pareto(pts []Point, objs ...Objective) []Point {
	if len(objs) == 0 {
		return nil
	}
	var out []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			noWorse, better := true, false
			for _, f := range objs {
				if f(q) > f(p)+1e-12 {
					noWorse = false
					break
				}
				if f(q) < f(p)-1e-12 {
					better = true
				}
			}
			if noWorse && better {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool { return objs[0](out[a]) < objs[0](out[b]) })
	return out
}

// Hypervolume computes the 2-D hypervolume indicator of a Pareto front with
// respect to a reference point (both objectives minimized): the area
// dominated by the front and bounded by (refX, refY). Used to compare the
// coverage of different flows' fronts quantitatively.
func Hypervolume(front []Point, fx, fy Objective, refX, refY float64) float64 {
	f := Pareto(front, fx, fy)
	area := 0.0
	prevX := refX
	// Walk from largest fx to smallest; each segment contributes width ×
	// height above the reference.
	for i := len(f) - 1; i >= 0; i-- {
		x, y := fx(f[i]), fy(f[i])
		if x >= refX || y >= refY {
			continue
		}
		if x < prevX {
			area += (prevX - x) * (refY - y)
			prevX = x
		}
	}
	return area
}
