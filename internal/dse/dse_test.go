package dse

import (
	"math"
	"testing"

	"dscts/internal/baseline"
	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/tech"
)

func TestThresholdsAndFractions(t *testing.T) {
	th := Thresholds(20, 60, 20)
	if len(th) != 3 || th[0] != 20 || th[2] != 60 {
		t.Fatalf("Thresholds = %v", th)
	}
	if Thresholds(10, 5, 1) != nil || Thresholds(1, 10, 0) != nil {
		t.Error("invalid ranges should return nil")
	}
	fr := Fractions(0.2, 0.3, 0.05)
	if len(fr) != 3 || math.Abs(fr[2]-0.3) > 1e-9 {
		t.Fatalf("Fractions = %v", fr)
	}
	// Paper sweep sizes: 20..1000 step 10 -> 99; 0.2..0.9 step 0.05 -> 15.
	if got := len(Thresholds(20, 1000, 10)); got != 99 {
		t.Errorf("paper threshold sweep size %d, want 99", got)
	}
	if got := len(Fractions(0.2, 0.9, 0.05)); got != 15 {
		t.Errorf("paper fraction sweep size %d, want 15", got)
	}
}

func TestParetoBasics(t *testing.T) {
	pts := []Point{
		{Flow: "a", Latency: 10, Bufs: 100},
		{Flow: "b", Latency: 8, Bufs: 120},
		{Flow: "c", Latency: 12, Bufs: 110}, // dominated by a
		{Flow: "d", Latency: 8, Bufs: 100},  // dominates a and b
	}
	front := Pareto(pts, Resources, Latency)
	if len(front) != 1 || front[0].Flow != "d" {
		t.Fatalf("front = %+v", front)
	}
	if got := Pareto(pts); got != nil {
		t.Error("no objectives should return nil")
	}
}

func TestParetoKeepsIncomparable(t *testing.T) {
	pts := []Point{
		{Flow: "cheap", Latency: 20, Bufs: 50},
		{Flow: "fast", Latency: 10, Bufs: 200},
	}
	front := Pareto(pts, Resources, Latency)
	if len(front) != 2 {
		t.Fatalf("incomparable points must both survive: %+v", front)
	}
	// Sorted by the first objective (resources).
	if front[0].Flow != "cheap" {
		t.Errorf("sort order: %+v", front)
	}
}

func TestHypervolume(t *testing.T) {
	pts := []Point{{Latency: 1, Bufs: 1}}
	// Single point (res 1, lat 1), ref (3, 3): area (3-1)*(3-1) = 4.
	hv := Hypervolume(pts, Resources, Latency, 3, 3)
	if math.Abs(hv-4) > 1e-9 {
		t.Fatalf("hv = %v, want 4", hv)
	}
	// A second dominated-region point extends coverage.
	pts = append(pts, Point{Latency: 0.5, Bufs: 2})
	hv2 := Hypervolume(pts, Resources, Latency, 3, 3)
	want := 4 + 1*0.5 // extra strip x in [2,3): height 3-0.5 minus overlap... staircase: [1,2)x(3-1) + [2,3)x(3-0.5)
	want = (2-1)*(3-1) + (3-2)*(3-0.5)
	if math.Abs(hv2-want) > 1e-9 {
		t.Fatalf("hv2 = %v, want %v", hv2, want)
	}
	// Points outside the reference contribute nothing.
	hv3 := Hypervolume([]Point{{Latency: 10, Bufs: 10}}, Resources, Latency, 3, 3)
	if hv3 != 0 {
		t.Fatalf("out-of-ref hv = %v", hv3)
	}
}

func TestSweepsEndToEnd(t *testing.T) {
	tc := tech.ASAP7()
	d, err := bench.ByID("C4")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}

	pts, err := SweepFanout(p.Root, p.Sinks, tc, []int{100, 800}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Flow != "ours-dse" || pts[0].Param != 100 {
		t.Fatalf("sweep points %+v", pts)
	}
	// Lower threshold opens more of the tree to nTSVs.
	if pts[0].TSVs <= pts[1].TSVs {
		t.Errorf("threshold 100 should use more nTSVs than 800: %d vs %d", pts[0].TSVs, pts[1].TSVs)
	}

	buffered, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Mode: core.SingleSide})
	if err != nil {
		t.Fatal(err)
	}
	f7, err := SweepFanoutFlip(buffered.Tree, tc, []int{50, 500}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7) != 2 {
		t.Fatalf("f7 points %d", len(f7))
	}
	f6, err := SweepCriticalFlip(buffered.Tree, tc, []float64{0.3, 0.7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6) != 2 {
		t.Fatalf("f6 points %d", len(f6))
	}
	// The sweeps must not mutate the input tree.
	b2, _ := baseline.FanoutFlip(buffered.Tree.Clone(), 50)
	if b2 == 0 {
		t.Error("input tree seems already flipped")
	}
	if _, tsvs := buffered.Tree.Counts(); tsvs != 0 {
		t.Fatal("sweep mutated the buffered tree")
	}
}

func TestSweepErrors(t *testing.T) {
	tc := tech.ASAP7()
	d, _ := bench.ByID("C4")
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepFanout(p.Root, p.Sinks, tc, nil, core.Options{}); err == nil {
		t.Error("empty thresholds should error")
	}
	buffered, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Mode: core.SingleSide})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepFanoutFlip(buffered.Tree, tc, []int{0}, 1); err == nil {
		t.Error("zero threshold should error")
	}
	if _, err := SweepCriticalFlip(buffered.Tree, tc, []float64{2}, 1); err == nil {
		t.Error("fraction > 1 should error")
	}
}
