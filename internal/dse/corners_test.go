package dse

import (
	"context"
	"testing"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/corner"
	"dscts/internal/tech"
)

func TestParetoCornersDominance(t *testing.T) {
	mk := func(param, latA, latB float64, bufs int) CornerPoint {
		return CornerPoint{Param: param, Corners: []Point{
			{Param: param, Latency: latA, Bufs: bufs},
			{Param: param, Latency: latB, Bufs: bufs},
		}}
	}
	pts := []CornerPoint{
		mk(1, 10, 15, 100),
		mk(2, 9, 16, 100),  // better at corner A, worse at corner B: incomparable
		mk(3, 11, 16, 100), // dominated by #1 at both corners
		mk(4, 10, 15, 90),  // dominates #1 on resources, ties timing
	}
	front := ParetoCorners(pts, Resources, Latency)
	got := map[float64]bool{}
	for _, p := range front {
		got[p.Param] = true
	}
	if len(front) != 2 || !got[2] || !got[4] {
		t.Fatalf("front params %v, want {2, 4}", got)
	}
	if ParetoCorners(pts) != nil {
		t.Fatal("no objectives should return nil")
	}
	// Single-corner dominance would have killed #2 (16 > 15 at corner B
	// keeps it alive across corners): verify the cross-corner front is a
	// superset of the corner-A front restricted to these points.
	cornerA := Pareto([]Point{pts[0].Corners[0], pts[1].Corners[0], pts[2].Corners[0], pts[3].Corners[0]}, Resources, Latency)
	if len(cornerA) >= len(front) {
		t.Logf("corner-A front %d points, cross-corner %d", len(cornerA), len(front))
	}
}

func TestParetoCornersWorstSort(t *testing.T) {
	pts := []CornerPoint{
		{Param: 1, Corners: []Point{{Latency: 5, Bufs: 9}, {Latency: 30, Bufs: 9}}},
		{Param: 2, Corners: []Point{{Latency: 20, Bufs: 4}, {Latency: 20, Bufs: 4}}},
	}
	front := ParetoCorners(pts, Resources, Latency)
	if len(front) != 2 || front[0].Param != 2 {
		t.Fatalf("front should sort by worst-corner resources: %+v", front)
	}
	if w := pts[0].Worst(Latency); w != 30 {
		t.Fatalf("Worst latency %g want 30", w)
	}
}

func TestSweepFanoutCornersEndToEnd(t *testing.T) {
	tc := tech.ASAP7()
	d, err := bench.ByID("C4")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	corners := corner.Presets()
	pts, err := SweepFanoutCorners(context.Background(), p.Root, p.Sinks, tc, []int{100, 800}, corners, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(pts[0].Corners) != 3 {
		t.Fatalf("got %d points x %d corners", len(pts), len(pts[0].Corners))
	}
	for _, pt := range pts {
		slow, typ, fast := pt.Corners[0], pt.Corners[1], pt.Corners[2]
		if slow.Flow != "ours-dse@slow" || typ.Flow != "ours-dse@typ" {
			t.Fatalf("flow labels %q %q", slow.Flow, typ.Flow)
		}
		if !(slow.Latency > typ.Latency && typ.Latency > fast.Latency) {
			t.Fatalf("corner ordering violated at threshold %g: %g %g %g",
				pt.Param, slow.Latency, typ.Latency, fast.Latency)
		}
		// Structure is corner-independent.
		if slow.Bufs != fast.Bufs || slow.TSVs != fast.TSVs || slow.WL != fast.WL {
			t.Fatalf("resources differ across corners at threshold %g", pt.Param)
		}
	}
	// The typ slice must agree with the plain sweep (same synthesis).
	plain, err := SweepFanout(p.Root, p.Sinks, tc, []int{100, 800}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		typ := pts[i].Corners[1]
		if typ.Latency != plain[i].Latency || typ.Skew != plain[i].Skew || typ.Bufs != plain[i].Bufs {
			t.Fatalf("typ corner diverges from single-corner sweep at %g", plain[i].Param)
		}
	}
	// Error paths.
	if _, err := SweepFanoutCorners(context.Background(), p.Root, p.Sinks, tc, nil, corners, core.Options{}); err == nil {
		t.Error("empty thresholds accepted")
	}
	if _, err := SweepFanoutCorners(context.Background(), p.Root, p.Sinks, tc, []int{100}, nil, core.Options{}); err == nil {
		t.Error("empty corners accepted")
	}
}
