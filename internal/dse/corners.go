package dse

import (
	"context"
	"fmt"
	"sort"

	"dscts/internal/core"
	"dscts/internal/corner"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

// CornerPoint is one explored solution evaluated across PVT corners: the
// swept knob value plus one Point per corner, in the sweep's corner order.
// The resource counts and wirelength are corner-independent (the same tree
// is signed off everywhere); latency and skew vary per corner.
type CornerPoint struct {
	Param   float64
	Corners []Point // Flow is "ours-dse@<corner>"
}

// Worst returns the maximum of the objective over corners — the sign-off
// value of the point under that objective.
func (p CornerPoint) Worst(f Objective) float64 {
	worst := f(p.Corners[0])
	for _, q := range p.Corners[1:] {
		if v := f(q); v > worst {
			worst = v
		}
	}
	return worst
}

// SweepFanoutCorners is SweepFanout with multi-corner sign-off: every
// threshold's synthesis is followed by a corner sweep of its tree, and the
// result carries one Point per corner. Sweep points remain independent
// whole syntheses running concurrently under base.Workers; within each
// point the corner evaluations reuse the point's inner worker budget.
// Output order follows thresholds × corners and is identical for every
// worker count.
func SweepFanoutCorners(ctx context.Context, root geom.Point, sinks []geom.Point, tc *tech.Tech, thresholds []int, corners []corner.Corner, base core.Options) ([]CornerPoint, error) {
	if len(corners) == 0 {
		return nil, fmt.Errorf("dse: no corners")
	}
	out := make([]CornerPoint, len(thresholds))
	err := sweepFanout(ctx, root, sinks, tc, thresholds, corners, base, func(i int, o *core.Outcome) {
		cp := CornerPoint{Param: float64(thresholds[i]), Corners: make([]Point, len(corners))}
		for ci, res := range o.Corners.Results {
			cp.Corners[ci] = fromMetrics("ours-dse@"+res.Corner.Name, float64(thresholds[i]), res.Metrics)
		}
		out[i] = cp
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ParetoCorners extracts the cross-corner Pareto front: a point q
// dominates p only if q is no worse than p in every objective at EVERY
// corner, and strictly better in at least one (corner, objective) pair.
// This is stricter than single-corner dominance — a candidate that wins at
// the typical corner but regresses the slow corner does not dominate — so
// the cross-corner front is a superset of any single corner's front
// (restricted to the same point set). All points must carry the same
// corner count. The front is sorted by the worst-corner value of the
// first objective.
func ParetoCorners(pts []CornerPoint, objs ...Objective) []CornerPoint {
	if len(objs) == 0 {
		return nil
	}
	var out []CornerPoint
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j || len(q.Corners) != len(p.Corners) {
				continue
			}
			noWorse, better := true, false
			for c := range p.Corners {
				for _, f := range objs {
					if f(q.Corners[c]) > f(p.Corners[c])+1e-12 {
						noWorse = false
						break
					}
					if f(q.Corners[c]) < f(p.Corners[c])-1e-12 {
						better = true
					}
				}
				if !noWorse {
					break
				}
			}
			if noWorse && better {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Worst(objs[0]) < out[b].Worst(objs[0]) })
	return out
}
