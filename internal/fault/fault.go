// Package fault is a deterministic, seedable fault-injection registry: a
// scripted schedule of failures (errors, panics, latency, hangs, cancels,
// cache corruption) attached to named injection points threaded through the
// synthesis flow's phase boundaries, the service queue/cache, and the ECO
// splice path. Tests and the chaos soak (benchgen -load -chaos) use it to
// reproduce failure scenarios exactly; production code holds a nil *Registry
// and every hook is a zero-cost no-op.
//
// Determinism contract: each rule keeps its own call counter, and whether
// call N of a point fires is a pure function of (seed, point, kind, N).
// Under concurrency the ASSIGNMENT of calls to goroutines follows the
// scheduler, but the fire pattern over the call sequence — and therefore
// every aggregate the chaos soak asserts on — is reproducible from the seed.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The injection-point catalog (DESIGN.md §5). Points are compile-time
// constants so a typo in a test is a build error, and Parse rejects names
// outside this set so a typo in a chaos spec is a loud failure.
const (
	// PointRoute..PointEval are the monolithic flow's phase boundaries;
	// under partitioning every region's runStages pass consults them too.
	PointRoute  = "core.route"
	PointInsert = "core.insert"
	PointRefine = "core.refine"
	PointEval   = "core.eval"
	// PointStitch is the partitioned pipeline's top-tree merge.
	PointStitch = "core.stitch"
	// PointECO is the incremental re-synthesis (splice) entry.
	PointECO = "core.eco"
	// PointServeJob fires once per job execution, before the flow starts;
	// it accepts every kind including Cancel (the job's context is
	// cancelled) and Hang (the worker sticks, exercising the watchdog).
	PointServeJob = "serve.job"
	// PointServeCache fires once per cache-bound submission; kind Corrupt
	// flips the stored entry's checksum so the integrity check must catch
	// it and fall through to recompute.
	PointServeCache = "serve.cache"
)

// Points lists every registered injection point.
var Points = []string{
	PointRoute, PointInsert, PointRefine, PointEval,
	PointStitch, PointECO, PointServeJob, PointServeCache,
}

// Kind is the failure a rule injects.
type Kind uint8

const (
	// Error makes the point return an error wrapping ErrInjected.
	Error Kind = iota + 1
	// Panic panics with a *PanicValue, exercising recovery paths.
	Panic
	// Delay sleeps for the rule's duration honoring the context: injected
	// latency that a deadline can still cut short.
	Delay
	// Hang sleeps for the rule's duration IGNORING the context: a stuck
	// worker that only a watchdog can reclaim. Durations are bounded, so a
	// hung goroutine always returns eventually (and can be joined).
	Hang
	// Cancel asks the caller to cancel the surrounding work; the serve
	// queue interprets it by cancelling the job's context. Applied inline
	// (Check), it returns an error wrapping context.Canceled.
	Cancel
	// Corrupt asks the caller to corrupt the datum behind the point (the
	// service flips a cached entry's checksum). Inline it is a no-op.
	Corrupt
)

var kindNames = map[Kind]string{
	Error: "error", Panic: "panic", Delay: "delay",
	Hang: "hang", Cancel: "cancel", Corrupt: "corrupt",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a kind name from a spec entry.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q (want error, panic, delay, hang, cancel or corrupt)", s)
}

// Rule schedules one fault at one point. Exactly one trigger applies: Every
// (deterministic modular schedule) when positive, Rate (seeded per-call
// probability) otherwise.
type Rule struct {
	// Point names the injection point (one of Points).
	Point string
	// Kind is the injected failure.
	Kind Kind
	// Rate is the per-call fire probability in (0, 1]; evaluated from the
	// registry seed, the point, the kind and the call number, so the
	// schedule is reproducible. Ignored when Every is set.
	Rate float64
	// Every fires deterministically on calls After+1, After+1+Every, ...
	// (1 = every armed call).
	Every int
	// After skips the first After calls before the rule arms.
	After int
	// Limit caps the total fires (0 = unlimited). Every=1, Limit=1 is a
	// single targeted fault.
	Limit int
	// Sleep is the Delay/Hang duration; 0 defaults to 50ms.
	Sleep time.Duration
}

func (r Rule) validate() error {
	if !contains(Points, r.Point) {
		return fmt.Errorf("fault: unknown injection point %q", r.Point)
	}
	if _, ok := kindNames[r.Kind]; !ok {
		return fmt.Errorf("fault: rule at %s has invalid kind %d", r.Point, r.Kind)
	}
	if r.Every < 0 || r.After < 0 || r.Limit < 0 {
		return fmt.Errorf("fault: rule %s@%s has negative schedule fields", r.Kind, r.Point)
	}
	if r.Every == 0 && (r.Rate <= 0 || r.Rate > 1) {
		return fmt.Errorf("fault: rule %s@%s needs a rate in (0,1] or every=N, got rate %g", r.Kind, r.Point, r.Rate)
	}
	if r.Sleep < 0 {
		return fmt.Errorf("fault: rule %s@%s has negative sleep", r.Kind, r.Point)
	}
	return nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Fault is one scheduled injection, returned by Fire.
type Fault struct {
	Point string
	Kind  Kind
	// Sleep is the Delay/Hang duration (defaulted, never zero).
	Sleep time.Duration
	// Seq is the per-rule call number that fired, for logs and errors.
	Seq int64
}

// ErrInjected is the sentinel every injected error wraps, so consumers can
// tell scripted failures from organic ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// Err returns the structured error form of the fault.
func (f *Fault) Err() error {
	return fmt.Errorf("fault: %s at %s (call %d): %w", f.Kind, f.Point, f.Seq, ErrInjected)
}

// PanicValue is the value injected panics carry; recovery code can detect it
// with IsInjectedPanic.
type PanicValue struct {
	Point string
	Seq   int64
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("injected panic at %s (call %d)", p.Point, p.Seq)
}

// IsInjectedPanic reports whether a recovered value came from this package.
func IsInjectedPanic(v any) bool {
	_, ok := v.(*PanicValue)
	return ok
}

// armed is a rule plus its live counters.
type armed struct {
	Rule
	calls atomic.Int64
	fires atomic.Int64
}

// Registry is an armed fault schedule. The zero registry (and a nil
// *Registry) never fires; all methods are safe on a nil receiver and safe
// for concurrent use.
type Registry struct {
	seed    uint64
	rules   []*armed
	byPoint map[string][]*armed
}

// GobEncode serializes a registry as nothing: an armed fault schedule is
// process-local test scaffolding that must never ride into persisted
// snapshots (internal/store gob-encodes structures whose options carry a
// *Registry field). Without an explicit codec, gob would reject the whole
// containing type — Registry has no exported fields.
func (r *Registry) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode restores the empty encoding as an unarmed registry.
func (r *Registry) GobDecode([]byte) error {
	*r = Registry{}
	return nil
}

// New arms a registry with the given seed and rules.
func New(seed int64, rules ...Rule) (*Registry, error) {
	r := &Registry{seed: uint64(seed), byPoint: make(map[string][]*armed)}
	for _, rule := range rules {
		if err := rule.validate(); err != nil {
			return nil, err
		}
		a := &armed{Rule: rule}
		r.rules = append(r.rules, a)
		r.byPoint[rule.Point] = append(r.byPoint[rule.Point], a)
	}
	return r, nil
}

// Parse builds a registry from a compact spec: semicolon- (or comma-)
// separated entries of the form
//
//	kind@point:trigger[:duration]
//
// where trigger is a probability ("0.02"), "every=N", "nth=N" (exactly the
// Nth call) or "once" (the first call only), and duration applies to
// delay/hang kinds. Example:
//
//	panic@serve.job:0.02;delay@core.insert:every=3:30ms;corrupt@serve.cache:once
func Parse(spec string, seed int64) (*Registry, error) {
	var rules []Rule
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q: want kind@point:trigger", entry)
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			return nil, err
		}
		point, args, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q has no trigger", entry)
		}
		rule := Rule{Point: point, Kind: kind}
		parts := strings.Split(args, ":")
		switch trig := parts[0]; {
		case trig == "once":
			rule.Every, rule.Limit = 1, 1
		case strings.HasPrefix(trig, "every="):
			n, err := strconv.Atoi(trig[len("every="):])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: entry %q: bad every=N", entry)
			}
			rule.Every = n
		case strings.HasPrefix(trig, "nth="):
			n, err := strconv.Atoi(trig[len("nth="):])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: entry %q: bad nth=N", entry)
			}
			rule.After, rule.Every, rule.Limit = n-1, 1, 1
		default:
			rate, err := strconv.ParseFloat(trig, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: entry %q: bad trigger %q", entry, trig)
			}
			rule.Rate = rate
		}
		if len(parts) > 1 {
			d, err := time.ParseDuration(parts[1])
			if err != nil {
				return nil, fmt.Errorf("fault: entry %q: bad duration %q", entry, parts[1])
			}
			rule.Sleep = d
		}
		if len(parts) > 2 {
			return nil, fmt.Errorf("fault: entry %q has trailing fields", entry)
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty spec")
	}
	return New(seed, rules...)
}

// Enabled reports whether any rule is armed.
func (r *Registry) Enabled() bool { return r != nil && len(r.rules) > 0 }

// Fire evaluates the point's rules for this call and returns the fault to
// inject, or nil. A nil registry always returns nil. When several rules
// share a point, the first that fires wins (each still consumes its call).
func (r *Registry) Fire(point string) *Fault {
	if r == nil {
		return nil
	}
	var hit *Fault
	for _, a := range r.byPoint[point] {
		c := a.calls.Add(1)
		if hit != nil {
			continue // later rules still advance their counters
		}
		if a.After > 0 && c <= int64(a.After) {
			continue
		}
		if a.Limit > 0 && a.fires.Load() >= int64(a.Limit) {
			continue
		}
		var fire bool
		if a.Every > 0 {
			fire = (c-int64(a.After)-1)%int64(a.Every) == 0
		} else {
			fire = u01(r.seed, point, a.Kind, c) < a.Rate
		}
		if !fire {
			continue
		}
		a.fires.Add(1)
		sleep := a.Sleep
		if sleep <= 0 {
			sleep = 50 * time.Millisecond
		}
		hit = &Fault{Point: point, Kind: a.Kind, Sleep: sleep, Seq: c}
	}
	return hit
}

// Check is the inline phase-boundary hook: it fires the point and applies
// the fault generically — Error is returned, Panic panics, Delay/Hang
// sleep. Returns nil when nothing fires (the common, zero-cost case).
func (r *Registry) Check(ctx context.Context, point string) error {
	f := r.Fire(point)
	if f == nil {
		return nil
	}
	return f.Apply(ctx)
}

// Apply executes the fault inline. Cancel degrades to an error wrapping
// context.Canceled (only the service can cancel a real job context), and
// Corrupt is a no-op (only a cache owner can interpret it).
func (f *Fault) Apply(ctx context.Context) error {
	switch f.Kind {
	case Error:
		return f.Err()
	case Panic:
		panic(&PanicValue{Point: f.Point, Seq: f.Seq})
	case Delay:
		t := time.NewTimer(f.Sleep)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case Hang:
		time.Sleep(f.Sleep)
		return nil
	case Cancel:
		return fmt.Errorf("fault: cancel at %s (call %d): %w", f.Point, f.Seq, context.Canceled)
	}
	return nil
}

// Counts snapshots the fires per "kind@point", omitting zeros. Keys are
// sorted into the slice form by CountsList for stable JSON.
func (r *Registry) Counts() map[string]int64 {
	if r == nil {
		return nil
	}
	out := make(map[string]int64)
	for _, a := range r.rules {
		if n := a.fires.Load(); n > 0 {
			out[a.Kind.String()+"@"+a.Point] += n
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// TotalFires is the number of injections so far.
func (r *Registry) TotalFires() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for _, a := range r.rules {
		n += a.fires.Load()
	}
	return n
}

// String summarizes the armed rules (for logs and reports).
func (r *Registry) String() string {
	if r == nil || len(r.rules) == 0 {
		return "fault: disabled"
	}
	parts := make([]string, 0, len(r.rules))
	for _, a := range r.rules {
		var trig string
		switch {
		case a.Every == 1 && a.Limit == 1 && a.After == 0:
			trig = "once"
		case a.Every == 1 && a.Limit == 1:
			trig = fmt.Sprintf("nth=%d", a.After+1)
		case a.Every > 0:
			trig = fmt.Sprintf("every=%d", a.Every)
			// After/Limit on an every= rule aren't expressible in the
			// Parse grammar (only hand-built rules reach here); annotate
			// so the log still states the real schedule.
			if a.After > 0 {
				trig += fmt.Sprintf("+after=%d", a.After)
			}
			if a.Limit > 0 {
				trig += fmt.Sprintf("+limit=%d", a.Limit)
			}
		default:
			trig = fmt.Sprintf("%g", a.Rate)
		}
		s := fmt.Sprintf("%s@%s:%s", a.Kind, a.Point, trig)
		if a.Kind == Delay || a.Kind == Hang {
			sleep := a.Sleep
			if sleep <= 0 {
				sleep = 50 * time.Millisecond // the Fire-time default
			}
			s += fmt.Sprintf(":%s", sleep)
		}
		parts = append(parts, s)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// u01 maps (seed, point, kind, call) to a uniform [0,1) value: FNV over the
// point name mixed with the call number through splitmix64.
func u01(seed uint64, point string, kind Kind, call int64) float64 {
	h := fnv.New64a()
	io.WriteString(h, point)
	x := seed ^ h.Sum64() ^ uint64(call)*0x9e3779b97f4a7c15 ^ uint64(kind)<<56
	x = splitmix64(x)
	return float64(x>>11) / (1 << 53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
