package fault

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryNoOp: a nil *Registry is the production configuration; every
// method must be a safe no-op.
func TestNilRegistryNoOp(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	if f := r.Fire(PointRoute); f != nil {
		t.Errorf("nil registry fired %v", f)
	}
	if err := r.Check(context.Background(), PointServeJob); err != nil {
		t.Errorf("nil registry Check returned %v", err)
	}
	if c := r.Counts(); c != nil {
		t.Errorf("nil registry Counts = %v", c)
	}
	if n := r.TotalFires(); n != 0 {
		t.Errorf("nil registry TotalFires = %d", n)
	}
	if s := r.String(); s != "fault: disabled" {
		t.Errorf("nil registry String = %q", s)
	}
}

// TestStringRoundTrip: the armed-schedule log line must state the real
// schedule — each spec entry renders back to itself (sorted, with the
// delay/hang duration made explicit), and re-parsing the rendering arms
// an equivalent registry.
func TestStringRoundTrip(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"panic@serve.job:nth=1", "panic@serve.job:once"},
		{"panic@serve.job:nth=7", "panic@serve.job:nth=7"},
		{"error@core.route:once", "error@core.route:once"},
		{"error@core.route:every=3", "error@core.route:every=3"},
		{"corrupt@serve.cache:0.25", "corrupt@serve.cache:0.25"},
		{"delay@core.insert:every=2:30ms", "delay@core.insert:every=2:30ms"},
		{"delay@core.insert:0.5", "delay@core.insert:0.5:50ms"}, // default duration shown
		{"hang@serve.job:nth=2:3s", "hang@serve.job:nth=2:3s"},
		{
			"panic@serve.job:0.02;delay@core.insert:every=3:30ms;corrupt@serve.cache:once",
			"corrupt@serve.cache:once;delay@core.insert:every=3:30ms;panic@serve.job:0.02",
		},
	}
	for _, tc := range cases {
		r, err := Parse(tc.spec, 1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		got := r.String()
		if got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.spec, got, tc.want)
		}
		if _, err := Parse(got, 1); err != nil {
			t.Errorf("String() output %q does not re-parse: %v", got, err)
		}
	}
}

// TestDeterministicSchedule: the fire pattern over the call sequence is a
// pure function of the seed — two registries with the same seed and rules
// agree call for call, and a different seed produces a different pattern.
func TestDeterministicSchedule(t *testing.T) {
	const calls = 4096
	pattern := func(seed int64) []bool {
		r, err := New(seed, Rule{Point: PointRoute, Kind: Error, Rate: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, calls)
		for i := range out {
			out[i] = r.Fire(PointRoute) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fires++
		}
	}
	// At rate 0.1 over 4096 calls the expected fire count is ~410; a wide
	// band catches a broken u01 without being flaky.
	if fires < 250 || fires > 600 {
		t.Errorf("rate 0.1 fired %d/%d times, outside plausible band", fires, calls)
	}
	c := pattern(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == calls {
		t.Error("different seeds produced an identical schedule")
	}
}

// TestEverySchedule covers the modular trigger forms: every=N, After, and
// Limit, plus the once/nth shorthand semantics.
func TestEverySchedule(t *testing.T) {
	r, err := New(0,
		Rule{Point: PointInsert, Kind: Error, Every: 3},
		Rule{Point: PointRefine, Kind: Error, Every: 1, After: 2, Limit: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	var insertFires []int
	for i := 1; i <= 9; i++ {
		if r.Fire(PointInsert) != nil {
			insertFires = append(insertFires, i)
		}
	}
	want := []int{1, 4, 7}
	if len(insertFires) != len(want) {
		t.Fatalf("every=3 fired on calls %v, want %v", insertFires, want)
	}
	for i := range want {
		if insertFires[i] != want[i] {
			t.Fatalf("every=3 fired on calls %v, want %v", insertFires, want)
		}
	}
	var refineFires []int
	for i := 1; i <= 6; i++ {
		if r.Fire(PointRefine) != nil {
			refineFires = append(refineFires, i)
		}
	}
	// After=2 skips calls 1-2; Limit=2 caps it at calls 3 and 4.
	if len(refineFires) != 2 || refineFires[0] != 3 || refineFires[1] != 4 {
		t.Fatalf("after=2 limit=2 fired on calls %v, want [3 4]", refineFires)
	}
	if got := r.TotalFires(); got != 5 {
		t.Errorf("TotalFires = %d, want 5", got)
	}
	counts := r.Counts()
	if counts["error@core.insert"] != 3 || counts["error@core.refine"] != 2 {
		t.Errorf("Counts = %v", counts)
	}
}

// TestParse exercises the spec grammar, including every error path.
func TestParse(t *testing.T) {
	r, err := Parse("panic@serve.job:0.02; delay@core.insert:every=3:30ms, corrupt@serve.cache:once;error@core.route:nth=5", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Enabled() {
		t.Fatal("parsed registry not enabled")
	}
	if len(r.rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(r.rules))
	}
	onceRule := r.rules[2]
	if onceRule.Every != 1 || onceRule.Limit != 1 {
		t.Errorf("once parsed as %+v", onceRule.Rule)
	}
	nth := r.rules[3]
	if nth.After != 4 || nth.Every != 1 || nth.Limit != 1 {
		t.Errorf("nth=5 parsed as %+v", nth.Rule)
	}
	if r.rules[1].Sleep != 30*time.Millisecond {
		t.Errorf("duration parsed as %v", r.rules[1].Sleep)
	}

	bad := []string{
		"",                             // empty spec
		"panic",                        // no @
		"panic@serve.job",              // no trigger
		"frobnicate@serve.job:0.5",     // unknown kind
		"panic@serve.elsewhere:0.5",    // unknown point
		"panic@serve.job:every=0",      // bad every
		"panic@serve.job:nth=0",        // bad nth
		"panic@serve.job:lots",         // bad rate
		"panic@serve.job:2.0",          // rate out of range
		"delay@core.insert:0.5:soon",   // bad duration
		"delay@core.insert:0.5:1s:huh", // trailing fields
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 0); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

// TestApplyKinds checks every kind's inline behavior.
func TestApplyKinds(t *testing.T) {
	f := &Fault{Point: PointEval, Kind: Error, Seq: 3, Sleep: time.Millisecond}
	if err := f.Apply(context.Background()); !errors.Is(err, ErrInjected) {
		t.Errorf("Error kind returned %v, want ErrInjected", err)
	}
	if !strings.Contains(f.Err().Error(), PointEval) {
		t.Errorf("injected error %q does not name its point", f.Err())
	}

	func() {
		defer func() {
			v := recover()
			if !IsInjectedPanic(v) {
				t.Errorf("Panic kind recovered %v, not a *PanicValue", v)
			}
		}()
		(&Fault{Point: PointEval, Kind: Panic, Seq: 1}).Apply(context.Background())
		t.Error("Panic kind did not panic")
	}()

	// Delay honors cancellation: a long sleep under a cancelled context
	// returns the context error immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := (&Fault{Kind: Delay, Sleep: time.Minute}).Apply(ctx)
	if !errors.Is(err, context.Canceled) || time.Since(start) > time.Second {
		t.Errorf("Delay under cancelled ctx: err=%v after %v", err, time.Since(start))
	}

	// Hang ignores cancellation but is bounded by its duration.
	start = time.Now()
	if err := (&Fault{Kind: Hang, Sleep: 20 * time.Millisecond}).Apply(ctx); err != nil {
		t.Errorf("Hang returned %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("Hang returned before its duration despite cancelled ctx")
	}

	if err := (&Fault{Kind: Cancel, Seq: 2}).Apply(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("Cancel kind returned %v, want context.Canceled wrap", err)
	}
	if err := (&Fault{Kind: Corrupt}).Apply(context.Background()); err != nil {
		t.Errorf("Corrupt inline returned %v, want nil no-op", err)
	}
}

// TestFirstRuleWins: with several rules at one point, the first firing rule
// wins but later rules still consume their call.
func TestFirstRuleWins(t *testing.T) {
	r, err := New(0,
		Rule{Point: PointECO, Kind: Error, Every: 2}, // calls 1,3,5...
		Rule{Point: PointECO, Kind: Delay, Every: 1}, // every call
	)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]Kind, 0, 4)
	for i := 0; i < 4; i++ {
		kinds = append(kinds, r.Fire(PointECO).Kind)
	}
	wantKinds := []Kind{Error, Delay, Error, Delay}
	for i, k := range wantKinds {
		if kinds[i] != k {
			t.Fatalf("fired kinds %v, want %v", kinds, wantKinds)
		}
	}
	// The delay rule's counter advanced on every call even when error won.
	if got := r.Counts()["delay@core.eco"]; got != 2 {
		t.Errorf("delay fired %d times, want 2", got)
	}
}

// TestConcurrentFire: firing from many goroutines is race-free and the total
// fire count matches the modular schedule exactly.
func TestConcurrentFire(t *testing.T) {
	r, err := New(0, Rule{Point: PointServeJob, Kind: Error, Every: 4})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Fire(PointServeJob)
			}
		}()
	}
	wg.Wait()
	if got, want := r.TotalFires(), int64(workers*per/4); got != want {
		t.Errorf("every=4 over %d calls fired %d times, want %d", workers*per, got, want)
	}
}

// TestRuleValidation rejects malformed rules at construction.
func TestRuleValidation(t *testing.T) {
	bad := []Rule{
		{Point: "nope", Kind: Error, Rate: 0.5},
		{Point: PointRoute, Kind: 0, Rate: 0.5},
		{Point: PointRoute, Kind: Error},            // no trigger at all
		{Point: PointRoute, Kind: Error, Rate: 1.5}, // rate out of range
		{Point: PointRoute, Kind: Error, Every: -1},
		{Point: PointRoute, Kind: Error, Every: 1, Sleep: -time.Second},
	}
	for i, rule := range bad {
		if _, err := New(0, rule); err == nil {
			t.Errorf("rule %d (%+v) accepted", i, rule)
		}
	}
}
