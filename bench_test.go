package dscts

// Benchmarks regenerating the computational core of every table and figure
// in the paper's evaluation (Sec. IV), plus ablations for the design
// decisions called out in DESIGN.md §4. The printable tables/series come
// from cmd/experiments; these benches measure the same code paths and
// report the headline quality metrics alongside wall time.

import (
	"fmt"
	"runtime"
	"testing"

	"dscts/internal/baseline"
	"dscts/internal/bench"
	"dscts/internal/cluster"
	"dscts/internal/core"
	"dscts/internal/dme"
	"dscts/internal/dse"
	"dscts/internal/eval"
	"dscts/internal/insert"
	"dscts/internal/partition"
	"dscts/internal/refine"
	"dscts/internal/tech"
)

func mustPlacement(b *testing.B, id string) *bench.Placement {
	b.Helper()
	d, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.Generate(d, 1)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTable1Tech covers Table I: technology construction+validation.
func BenchmarkTable1Tech(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tc := tech.ASAP7()
		if err := tc.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Benchgen covers Table II: synthesizing all five benchmark
// placements.
func BenchmarkTable2Benchgen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range bench.Suite() {
			p, err := bench.Generate(d, int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			if len(p.Sinks) != d.FFs {
				b.Fatal("sink count mismatch")
			}
		}
	}
}

// BenchmarkTable3 covers the Table III flows, one sub-benchmark per
// (design, flow) cell group.
func BenchmarkTable3(b *testing.B) {
	tc := tech.ASAP7()
	for _, id := range []string{"C1", "C2", "C3", "C4", "C5"} {
		p := mustPlacement(b, id)
		b.Run(id+"/openroad", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := baseline.OpenROADTree(p.Root, p.Sinks, tc, baseline.OpenROADOptions{Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				reportTree(b, tc, tr)
			}
		})
		b.Run(id+"/openroad+veloso", func(b *testing.B) {
			tr0, err := baseline.OpenROADTree(p.Root, p.Sinks, tc, baseline.OpenROADOptions{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := tr0.Clone()
				if _, err := baseline.Veloso(tr); err != nil {
					b.Fatal(err)
				}
				reportTree(b, tc, tr)
			}
		})
		b.Run(id+"/ours", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				reportMetrics(b, out.Metrics)
			}
		})
		b.Run(id+"/ours-single-side", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Mode: core.SingleSide})
				if err != nil {
					b.Fatal(err)
				}
				reportMetrics(b, out.Metrics)
			}
		})
		b.Run(id+"/buffered+fanout100", func(b *testing.B) {
			buffered, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Mode: core.SingleSide})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := buffered.Tree.Clone()
				if _, err := baseline.FanoutFlip(tr, 100); err != nil {
					b.Fatal(err)
				}
				reportTree(b, tc, tr)
			}
		})
		b.Run(id+"/buffered+critical0.5", func(b *testing.B) {
			buffered, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Mode: core.SingleSide})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := buffered.Tree.Clone()
				if _, err := baseline.CriticalFlip(tr, tc, 0.5); err != nil {
					b.Fatal(err)
				}
				reportTree(b, tc, tr)
			}
		})
	}
}

// BenchmarkFig8AdaptiveT covers the adaptive scale factor of Fig. 8.
func BenchmarkFig8AdaptiveT(b *testing.B) {
	sum := 0.0
	for i := 0; i < b.N; i++ {
		for n := 0; n <= 20000; n += 100 {
			sum += refine.AdaptiveT(n)
		}
	}
	_ = sum
}

// BenchmarkFig10MOES covers the MOES study: C3 with the diverse root set
// retained, measuring the full DP including multi-objective selection.
func BenchmarkFig10MOES(b *testing.B) {
	tc := tech.ASAP7()
	p := mustPlacement(b, "C3")
	for i := 0; i < b.N; i++ {
		out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{
			KeepRootSet: true, DiversePruning: true, SkipRefine: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.DP.Candidates) < 2 {
			b.Fatal("no root-set diversity")
		}
		b.ReportMetric(float64(len(out.DP.Candidates)), "root-candidates")
	}
}

// BenchmarkFig11SkewRefinement covers the skew-refinement pass in
// isolation: DP output of C1 refined each iteration.
func BenchmarkFig11SkewRefinement(b *testing.B) {
	tc := tech.ASAP7()
	p := mustPlacement(b, "C1")
	base, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{SkipRefine: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := base.Tree.Clone()
		rep, err := refine.Refine(tr, tc, refine.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Before.Skew-rep.After.Skew, "ps-skew-cut")
	}
}

// BenchmarkFig12DSE covers one DSE sweep slice on C4 (three thresholds per
// iteration; the full figure sweeps 99).
func BenchmarkFig12DSE(b *testing.B) {
	tc := tech.ASAP7()
	p := mustPlacement(b, "C4")
	ths := []int{50, 200, 800}
	for i := 0; i < b.N; i++ {
		pts, err := dse.SweepFanout(p.Root, p.Sinks, tc, ths, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		front := dse.Pareto(pts, dse.Resources, dse.Latency)
		if len(front) == 0 {
			b.Fatal("empty front")
		}
	}
}

// BenchmarkAblationDME compares hierarchical DME (the paper's) with
// matching-based flat DME on wirelength (Fig. 5 motivation).
func BenchmarkAblationDME(b *testing.B) {
	tc := tech.ASAP7()
	p := mustPlacement(b, "C5")
	for _, mode := range []struct {
		name string
		flat bool
	}{{"hierarchical", false}, {"flat", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{
					UseFlatDME: mode.flat, SkipRefine: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Metrics.WL, "um-wirelength")
			}
		})
	}
}

// BenchmarkAblationPruning measures the DP with different per-side solution
// budgets and with diversity pruning on/off.
func BenchmarkAblationPruning(b *testing.B) {
	tc := tech.ASAP7()
	p := mustPlacement(b, "C5")
	for _, cfg := range []struct {
		name    string
		max     int
		diverse bool
	}{
		{"keep8", 8, false},
		{"keep48", 48, false},
		{"keep128", 128, false},
		{"keep48-diverse", 48, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{
					SkipRefine: true, DiversePruning: cfg.diverse, MaxPerSide: cfg.max,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Metrics.Latency, "ps-latency")
			}
		})
	}
	// Direct DP-only comparison on a fixed routed tree.
	routed, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{SkipRefine: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, maxPerSide := range []int{8, 48, 128} {
		b.Run(fmt.Sprintf("dp-only/max%d", maxPerSide), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := routed.Tree.Clone()
				cfg := insert.DefaultConfig(tc)
				cfg.MaxPerSide = maxPerSide
				res, err := insert.Run(tr, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Chosen.Latency, "ps-latency")
			}
		})
	}
}

// BenchmarkAblationSegmentation sweeps the trunk-edge segmentation length.
func BenchmarkAblationSegmentation(b *testing.B) {
	tc := tech.ASAP7()
	p := mustPlacement(b, "C5")
	for _, maxEdge := range []float64{20, 40, 80, 160} {
		b.Run(fmt.Sprintf("maxEdge%d", int(maxEdge)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{
					MaxTrunkEdge: maxEdge, SkipRefine: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Metrics.Latency, "ps-latency")
			}
		})
	}
}

// BenchmarkAblationMOESWeights sweeps the buffer weight β of Eq. (3).
func BenchmarkAblationMOESWeights(b *testing.B) {
	tc := tech.ASAP7()
	p := mustPlacement(b, "C5")
	for _, beta := range []float64{1, 10, 100} {
		b.Run(fmt.Sprintf("beta%g", beta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{
					Alpha: 1, Beta: beta, Gamma: 1, SkipRefine: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Metrics.Latency, "ps-latency")
				b.ReportMetric(float64(out.Metrics.Buffers), "buffers")
			}
		})
	}
}

// BenchmarkSubstrates measures the individual pipeline stages on C3. The
// plain "clustering"/"insertion" variants run single-threaded (the
// algorithmic speed of the grid-accelerated k-means and allocation-lean
// DP); the "-parallel" variants add the worker pool at GOMAXPROCS, and
// "clustering-brute" keeps the pre-grid O(n·k) assignment scan as the
// reference point.
func BenchmarkSubstrates(b *testing.B) {
	tc := tech.ASAP7()
	p := mustPlacement(b, "C3")
	front := tc.Front()
	dualOpt := cluster.DualOptions{
		HighSize: 3000, LowSize: 30, Seed: 1, MaxIter: 40, Workers: 1,
		CapOf:    func(s, c Point) float64 { return tc.SinkCap + front.UnitCap*s.Dist(c) },
		CapLimit: 0.6 * tc.Buf.MaxCap,
	}
	b.Run("clustering", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.DualLevel(p.Sinks, dualOpt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("clustering-parallel", func(b *testing.B) {
		opt := dualOpt
		opt.Workers = runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			if _, err := cluster.DualLevel(p.Sinks, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("clustering-brute", func(b *testing.B) {
		opt := dualOpt
		opt.Brute = true
		for i := 0; i < b.N; i++ {
			if _, err := cluster.DualLevel(p.Sinks, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	d, err := cluster.DualLevel(p.Sinks, dualOpt)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("routing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dme.HierarchicalRoute(p.Root, p.Sinks, d, tc, dme.HierOptions{MaxTrunkEdge: 40}); err != nil {
				b.Fatal(err)
			}
		}
	})
	routed, err := dme.HierarchicalRoute(p.Root, p.Sinks, d, tc, dme.HierOptions{MaxTrunkEdge: 40})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("insertion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := routed.Clone()
			cfg := insert.DefaultConfig(tc)
			cfg.Workers = 1
			if _, err := insert.Run(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insertion-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := routed.Clone()
			cfg := insert.DefaultConfig(tc)
			cfg.Workers = runtime.GOMAXPROCS(0)
			if _, err := insert.Run(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	annotated := routed.Clone()
	if _, err := insert.Run(annotated, insert.DefaultConfig(tc)); err != nil {
		b.Fatal(err)
	}
	b.Run("evaluation", func(b *testing.B) {
		ev := eval.New(tc, eval.Elmore)
		for i := 0; i < b.N; i++ {
			if _, err := ev.Evaluate(annotated); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("evaluation-nldm", func(b *testing.B) {
		ev := eval.New(tc, eval.NLDM)
		for i := 0; i < b.N; i++ {
			if _, err := ev.Evaluate(annotated); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelSynthesize measures the end-to-end flow at one worker
// versus the full pool, per design. The Workers=1 column is the
// algorithmic baseline; on a multi-core machine the GOMAXPROCS column adds
// the parallel engine on top. Both produce identical Metrics (see
// TestWorkersDeterminism).
func BenchmarkParallelSynthesize(b *testing.B) {
	tc := tech.ASAP7()
	for _, id := range []string{"C3", "C5"} {
		p := mustPlacement(b, id)
		for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("%s/workers%d", id, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					reportMetrics(b, out.Metrics)
				}
			})
		}
	}
}

func reportTree(b *testing.B, tc *tech.Tech, tr *Tree) {
	b.Helper()
	m, err := eval.New(tc, eval.Elmore).Evaluate(tr)
	if err != nil {
		b.Fatal(err)
	}
	reportMetrics(b, m)
}

func reportMetrics(b *testing.B, m *eval.Metrics) {
	b.Helper()
	b.ReportMetric(m.Latency, "ps-latency")
	b.ReportMetric(m.Skew, "ps-skew")
}

// BenchmarkPartitionSynthesize measures the partition-parallel pipeline
// against the monolithic flow on the largest built-in benchmark (C2), and
// the partitioned path alone on an XL placement. Run with -benchmem: the
// partition path's allocation profile is part of its performance contract
// (PERFORMANCE.md records the counters).
func BenchmarkPartitionSynthesize(b *testing.B) {
	tc := tech.ASAP7()
	p := mustPlacement(b, "C2")
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"C2/monolithic", core.Options{}},
		{"C2/partitioned", core.Options{Partition: partition.Options{MaxSinks: len(p.Sinks)/4 + 1, Macros: p.Macros}}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := core.Synthesize(p.Root, p.Sinks, tc, cfg.opt)
				if err != nil {
					b.Fatal(err)
				}
				reportMetrics(b, out.Metrics)
			}
		})
	}
	xl, err := bench.GenerateXL(100_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("XL100k/partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := core.Synthesize(xl.Root, xl.Sinks, tc, core.Options{
				Partition: partition.Options{MaxSinks: 25_000, Macros: xl.Macros},
			})
			if err != nil {
				b.Fatal(err)
			}
			reportMetrics(b, out.Metrics)
		}
	})
}
