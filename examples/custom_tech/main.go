// Custom technology: the library is not tied to the ASAP7-derived numbers
// of the paper. This example sweeps the back-side metal resistance (the key
// parameter of backside-interconnect technologies) and reports how much of
// the latency benefit survives as the back side degrades toward front-side
// quality — a study the paper's DSE framework enables but does not run.
//
//	go run ./examples/custom_tech
package main

import (
	"fmt"
	"log"

	"dscts"
)

func main() {
	p, err := dscts.GenerateBenchmark("C4", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Front-side-only reference.
	ref, err := dscts.Synthesize(p.Root, p.Sinks, dscts.ASAP7(), dscts.Options{Mode: dscts.SingleSide})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("front-side only: %.2f ps\n\n", ref.Metrics.Latency)
	fmt.Println("back-res multiplier  latency(ps)  speedup  #nTSVs")

	// Degrade the back side from the published 0.000384 kOhm/um upward.
	for _, mult := range []float64{1, 4, 16, 63} {
		tc := dscts.ASAP7() // fresh copy each time
		for i := range tc.Layers {
			if tc.Layers[i].Back {
				tc.Layers[i].UnitRes *= mult
			}
		}
		if err := tc.Validate(); err != nil {
			log.Fatalf("multiplier %g: %v", mult, err)
		}
		out, err := dscts.Synthesize(p.Root, p.Sinks, tc, dscts.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%19g  %11.2f  %6.2fx  %6d\n",
			mult, out.Metrics.Latency, ref.Metrics.Latency/out.Metrics.Latency, out.Metrics.NTSVs)
	}
	fmt.Println("\nAs back-side resistance approaches front-side quality, the DP")
	fmt.Println("inserts fewer nTSVs and the latency advantage shrinks - the")
	fmt.Println("trade-off the paper's multi-objective formulation navigates.")
}
