// Baseline comparison: reproduce one row of the paper's Table III — the
// OpenROAD-style buffered tree, the three post-CTS back-side flip methods
// [2]/[7]/[6], and the paper's concurrent double-side flow, all on the same
// placement.
//
//	go run ./examples/baseline_compare
package main

import (
	"fmt"
	"log"

	"dscts"
)

func main() {
	p, err := dscts.GenerateBenchmark("C5", 1) // aes
	if err != nil {
		log.Fatal(err)
	}
	tc := dscts.ASAP7()

	row := func(name string, m *dscts.Metrics) {
		fmt.Printf("%-22s %8.2f ps %8.2f ps %6d %6d\n",
			name, m.Latency, m.Skew, m.Buffers, m.NTSVs)
	}
	fmt.Printf("%-22s %11s %11s %6s %6s\n", "flow", "latency", "skew", "#buf", "#tsv")

	// SOTA front-side CTS.
	or, err := dscts.OpenROADBaseline(p.Root, p.Sinks, tc)
	if err != nil {
		log.Fatal(err)
	}
	m, err := dscts.Evaluate(or, tc)
	if err != nil {
		log.Fatal(err)
	}
	row("openroad-style", m)

	// Post-CTS flips on clones of the baseline tree.
	type flip struct {
		name  string
		apply func(*dscts.Tree) (int, error)
	}
	for _, f := range []flip{
		{"+ veloso [2]", func(t *dscts.Tree) (int, error) { return dscts.FlipVeloso(t) }},
		{"+ fanout=100 [7]", func(t *dscts.Tree) (int, error) { return dscts.FlipByFanout(t, 100) }},
		{"+ critical q=0.5 [6]", func(t *dscts.Tree) (int, error) { return dscts.FlipByCriticality(t, tc, 0.5) }},
	} {
		tr := or.Clone()
		if _, err := f.apply(tr); err != nil {
			log.Fatal(err)
		}
		m, err := dscts.Evaluate(tr, tc)
		if err != nil {
			log.Fatal(err)
		}
		row(f.name, m)
	}

	// The paper's systematic flow.
	ours, err := dscts.Synthesize(p.Root, p.Sinks, tc, dscts.Options{})
	if err != nil {
		log.Fatal(err)
	}
	row("ours (concurrent)", ours.Metrics)
}
