// Quickstart: synthesize a double-side clock tree for a built-in benchmark
// and compare it against the single-side flow on the same placement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dscts"
)

func main() {
	// A placement: the built-in Table II design C4 (riscv32i, 1056 FFs).
	// dscts.ParseDEF reads external placed DEFs the same way.
	p, err := dscts.GenerateBenchmark("C4", 1)
	if err != nil {
		log.Fatal(err)
	}
	tc := dscts.ASAP7()
	fmt.Printf("design %s: %d sinks, die %.0fx%.0f um\n",
		p.Design.Name, len(p.Sinks), p.Die.W(), p.Die.H())

	// The paper's full flow: hierarchical routing, concurrent buffer &
	// nTSV insertion, skew refinement.
	double, err := dscts.Synthesize(p.Root, p.Sinks, tc, dscts.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The same flow restricted to the front side.
	single, err := dscts.Synthesize(p.Root, p.Sinks, tc, dscts.Options{Mode: dscts.SingleSide})
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, o *dscts.Outcome) {
		m := o.Metrics
		fmt.Printf("%-12s latency %7.2f ps   skew %6.2f ps   %4d buffers   %4d nTSVs   WL %.0f um   (%.0f ms)\n",
			name, m.Latency, m.Skew, m.Buffers, m.NTSVs, m.WL, float64(o.TotalTime.Milliseconds()))
	}
	show("double-side", double)
	show("single-side", single)
	fmt.Printf("back-side speedup: %.2fx latency\n", single.Metrics.Latency/double.Metrics.Latency)

	// Per-sink detail is available for downstream timing work.
	worst, worstD := -1, 0.0
	for idx, d := range double.Metrics.SinkDelays {
		if d > worstD {
			worst, worstD = idx, d
		}
	}
	fmt.Printf("critical sink: ff_%d at %v (%.2f ps)\n", worst, p.Sinks[worst], worstD)
}
