// Full flow: synthesize a double-side clock tree, legalize the inserted
// cells onto the placement grid, estimate clock power, and emit both a
// placed DEF of the finished tree and an SVG rendering of the side
// assignment — the artifacts a physical-design team would consume.
//
//	go run ./examples/full_flow [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dscts"
)

func main() {
	out := flag.String("out", ".", "output directory for DEF/SVG")
	flag.Parse()

	p, err := dscts.GenerateBenchmark("C5", 1) // aes, 2072 FFs
	if err != nil {
		log.Fatal(err)
	}
	tc := dscts.ASAP7()

	o, err := dscts.Synthesize(p.Root, p.Sinks, tc, dscts.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := o.Metrics
	fmt.Printf("synthesized %s: %.2f ps latency, %.2f ps skew, %d buffers, %d nTSVs\n",
		p.Design.Name, m.Latency, m.Skew, m.Buffers, m.NTSVs)

	// Sign-off-style evaluation with NLDM tables and slew propagation.
	nl, err := dscts.EvaluateNLDM(o.Tree, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NLDM check: %.2f ps latency, worst sink slew %.2f ps\n", nl.Latency, nl.MaxSlew)

	// Clock power breakdown.
	pw, err := dscts.EstimatePower(o.Tree, tc, dscts.DefaultPowerParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power @1GHz: %.3f mW total (switching %.3f, buffers %.3f)\n",
		pw.TotalMW, pw.SwitchingMW, pw.InternalMW)
	fmt.Printf("  cap: front wire %.0f fF, back wire %.0f fF, nTSV %.1f fF, pins %.0f fF\n",
		pw.FrontWireCap, pw.BackWireCap, pw.NTSVCap, pw.SinkPinCap+pw.BufInputCap)

	// Legalize + export DEF.
	defPath := filepath.Join(*out, "aes_clock.def")
	f, err := os.Create(defPath)
	if err != nil {
		log.Fatal(err)
	}
	cells, err := dscts.ExportDEF(f, o.Tree, p.Die, p.Macros, tc, "aes_clock")
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legalized %d cells (max displacement %.3f um, avg %.3f um) -> %s\n",
		len(cells.Cells), cells.MaxDisp, cells.AvgDisp, defPath)

	// SVG rendering.
	svgPath := filepath.Join(*out, "aes_clock.svg")
	sf, err := os.Create(svgPath)
	if err != nil {
		log.Fatal(err)
	}
	err = dscts.RenderSVG(sf, o.Tree, p.Die, p.Macros, "aes double-side clock tree")
	if cerr := sf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendering -> %s\n", svgPath)
}
