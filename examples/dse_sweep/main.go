// DSE sweep: explore the latency/skew vs resource trade-off of double-side
// CTS by sweeping the fanout threshold that controls where nTSVs may be
// inserted (Sec. III-E / Fig. 12 of the paper), then print the Pareto
// frontiers.
//
//	go run ./examples/dse_sweep
package main

import (
	"fmt"
	"log"

	"dscts"
)

func main() {
	p, err := dscts.GenerateBenchmark("C5", 1) // aes, 2072 FFs
	if err != nil {
		log.Fatal(err)
	}
	tc := dscts.ASAP7()

	// Sweep the threshold: high values confine nTSVs to the top trunk,
	// low values open the whole tree (the Table III full-mode flow).
	var thresholds []int
	for th := 20; th <= 1000; th += 70 {
		thresholds = append(thresholds, th)
	}
	pts, err := dscts.ExploreFanout(p.Root, p.Sinks, tc, thresholds, dscts.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("threshold  #buf+#ntsv  latency(ps)  skew(ps)")
	for _, q := range pts {
		fmt.Printf("%9.0f  %10d  %11.2f  %8.2f\n", q.Param, q.Resources(), q.Latency, q.Skew)
	}

	fmt.Println("\nPareto frontier (resources vs latency):")
	for _, q := range dscts.ParetoLatency(pts) {
		fmt.Printf("  threshold %4.0f: %4d cells -> %7.2f ps\n", q.Param, q.Resources(), q.Latency)
	}
	fmt.Println("Pareto frontier (resources vs skew):")
	for _, q := range dscts.ParetoSkew(pts) {
		fmt.Printf("  threshold %4.0f: %4d cells -> %7.2f ps\n", q.Param, q.Resources(), q.Skew)
	}
}
