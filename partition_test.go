package dscts

// Determinism and equivalence suite for the partition-parallel pipeline
// (ISSUE 4): the worker count must never change a partitioned result, a
// single-region partition must be bit-identical to the monolithic flow (so
// the whole golden suite doubles as the refactor's safety net), and every
// stitched tree must be structurally valid.

import (
	"testing"
)

// partitionCapFor picks a region capacity that forces a real multi-region
// partition on every built-in benchmark.
func partitionCapFor(sinks int) int {
	cap := sinks / 4
	if cap < 200 {
		cap = 200
	}
	return cap
}

// TestPartitionWorkersDeterminism synthesizes every built-in benchmark
// through the partitioned pipeline with one worker and with eight and
// requires bit-identical Metrics — the same contract the monolithic engine
// honors (TestWorkersDeterminism).
func TestPartitionWorkersDeterminism(t *testing.T) {
	tc := ASAP7()
	for _, id := range Benchmarks() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && id != "C4" && id != "C5" {
				t.Skip("large design skipped with -short")
			}
			p, err := GenerateBenchmark(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			popt := PartitionOptions{MaxSinks: partitionCapFor(len(p.Sinks)), Macros: p.Macros}
			seq, err := Synthesize(p.Root, p.Sinks, tc, Options{Workers: 1, Partition: popt})
			if err != nil {
				t.Fatal(err)
			}
			parl, err := Synthesize(p.Root, p.Sinks, tc, Options{Workers: 8, Partition: popt})
			if err != nil {
				t.Fatal(err)
			}
			if len(seq.Regions) < 2 {
				t.Fatalf("expected a partitioned run, got %d regions", len(seq.Regions))
			}
			metricsIdentical(t, id+" partitioned workers 1 vs 8", seq.Metrics, parl.Metrics)
			if len(seq.Regions) != len(parl.Regions) {
				t.Fatalf("region counts differ: %d vs %d", len(seq.Regions), len(parl.Regions))
			}
			for i := range seq.Regions {
				a, b := seq.Regions[i], parl.Regions[i]
				a.Time, b.Time = 0, 0 // wall-clock is the only schedule-dependent field
				if a != b {
					t.Fatalf("region %d stats differ: %+v vs %+v", i, seq.Regions[i], parl.Regions[i])
				}
			}
		})
	}
}

// TestPartitionSingleRegionMatchesGolden reuses the golden-metrics pins as
// the refactor's safety net: a partition capacity at or above the design
// size must take the monolithic path and reproduce the pinned numbers
// exactly (same comparison the golden suite applies).
func TestPartitionSingleRegionMatchesGolden(t *testing.T) {
	tc := ASAP7()
	for _, id := range Benchmarks() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && id != "C4" && id != "C5" {
				t.Skip("large design skipped with -short")
			}
			p, err := GenerateBenchmark(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			mono, err := Synthesize(p.Root, p.Sinks, tc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			part, err := Synthesize(p.Root, p.Sinks, tc, Options{
				Partition: PartitionOptions{MaxSinks: len(p.Sinks), Macros: p.Macros},
			})
			if err != nil {
				t.Fatal(err)
			}
			if part.Regions != nil {
				t.Fatalf("single-region run took the partitioned path (%d regions)", len(part.Regions))
			}
			metricsIdentical(t, id+" partitions=1 vs monolithic", mono.Metrics, part.Metrics)
		})
	}
}

// TestPartitionStitchValid runs every benchmark partitioned and checks the
// stitched tree: structurally valid, every sink present exactly once, and
// positive metrics.
func TestPartitionStitchValid(t *testing.T) {
	tc := ASAP7()
	for _, id := range Benchmarks() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && id != "C4" && id != "C5" {
				t.Skip("large design skipped with -short")
			}
			p, err := GenerateBenchmark(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			out, err := Synthesize(p.Root, p.Sinks, tc, Options{
				Partition: PartitionOptions{MaxSinks: partitionCapFor(len(p.Sinks)), Macros: p.Macros},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := out.Tree.Validate(); err != nil {
				t.Fatalf("stitched tree invalid: %v", err)
			}
			if got := len(out.Metrics.SinkDelays); got != len(p.Sinks) {
				t.Fatalf("%d of %d sinks evaluated", got, len(p.Sinks))
			}
			if out.Metrics.Latency <= 0 || out.Metrics.Skew < 0 {
				t.Fatalf("implausible metrics %+v", out.Metrics)
			}
			total := 0
			for _, r := range out.Regions {
				total += r.Sinks
			}
			if total != len(p.Sinks) {
				t.Fatalf("regions cover %d of %d sinks", total, len(p.Sinks))
			}
		})
	}
}

// TestPartitionStrategiesBothWork exercises the grid strategy end to end on
// one design (kd is covered by every other test).
func TestPartitionStrategiesBothWork(t *testing.T) {
	tc := ASAP7()
	p, err := GenerateBenchmark("C4", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []string{PartitionKD, PartitionGrid} {
		out, err := Synthesize(p.Root, p.Sinks, tc, Options{
			Partition: PartitionOptions{MaxSinks: 300, Strategy: strat, Macros: p.Macros},
		})
		if err != nil {
			t.Fatalf("strategy %q: %v", strat, err)
		}
		if err := out.Tree.Validate(); err != nil {
			t.Fatalf("strategy %q: %v", strat, err)
		}
		if len(out.Regions) < 2 {
			t.Fatalf("strategy %q: %d regions", strat, len(out.Regions))
		}
	}
}
