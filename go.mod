module dscts

go 1.24
