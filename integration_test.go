package dscts

// Integration tests running the complete pipeline — benchmark generation,
// DEF round trip, synthesis, baselines, refinement, legalization, export,
// power and visualization — across the Table II suite through the public
// API only. The larger designs are skipped under -short.

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestIntegrationSuite(t *testing.T) {
	tc := ASAP7()
	for _, id := range Benchmarks() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && id != "C4" && id != "C5" {
				t.Skip("large design skipped with -short")
			}
			p, err := GenerateBenchmark(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			double, err := Synthesize(p.Root, p.Sinks, tc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			single, err := Synthesize(p.Root, p.Sinks, tc, Options{Mode: SingleSide})
			if err != nil {
				t.Fatal(err)
			}
			m, s := double.Metrics, single.Metrics

			// Table III's structural claims, per design.
			if m.Latency >= s.Latency {
				t.Errorf("double-side latency %v not below single-side %v", m.Latency, s.Latency)
			}
			if m.NTSVs == 0 || s.NTSVs != 0 {
				t.Errorf("nTSV counts wrong: %d double, %d single", m.NTSVs, s.NTSVs)
			}
			if len(m.SinkDelays) != len(p.Sinks) {
				t.Errorf("sink coverage %d of %d", len(m.SinkDelays), len(p.Sinks))
			}
			// Skew within the refinement regime (p% of latency, with slack
			// for designs where refinement hits its budget).
			if m.Skew > 0.5*m.Latency {
				t.Errorf("skew %v implausible against latency %v", m.Skew, m.Latency)
			}
			// The OpenROAD-style baseline must be worse than our flow.
			or, err := OpenROADBaseline(p.Root, p.Sinks, tc)
			if err != nil {
				t.Fatal(err)
			}
			om, err := Evaluate(or, tc)
			if err != nil {
				t.Fatal(err)
			}
			if om.Latency <= m.Latency {
				t.Errorf("baseline latency %v not above ours %v", om.Latency, m.Latency)
			}
		})
	}
}

func TestIntegrationArtifacts(t *testing.T) {
	tc := ASAP7()
	p, err := GenerateBenchmark("C4", 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Power.
	pw, err := EstimatePower(out.Tree, tc, DefaultPowerParams())
	if err != nil {
		t.Fatal(err)
	}
	if pw.TotalMW <= 0 || pw.BackWireCap <= 0 {
		t.Errorf("power breakdown %+v", pw)
	}

	// Legalization + DEF export.
	var defBuf bytes.Buffer
	cells, err := ExportDEF(&defBuf, out.Tree, p.Die, p.Macros, tc, "c4_clk")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells.Cells) != out.Metrics.Buffers+out.Metrics.NTSVs {
		t.Errorf("exported %d cells for %d+%d", len(cells.Cells), out.Metrics.Buffers, out.Metrics.NTSVs)
	}
	if !strings.Contains(defBuf.String(), "DESIGN c4_clk") {
		t.Error("export DEF header missing")
	}
	// The exported DEF parses back through the public API (sinks only).
	back, err := ParseDEF(bytes.NewReader(defBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sinks) != len(p.Sinks) {
		t.Errorf("round trip lost sinks: %d vs %d", len(back.Sinks), len(p.Sinks))
	}

	// SVG.
	var svg bytes.Buffer
	if err := RenderSVG(&svg, out.Tree, p.Die, p.Macros, "c4"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "</svg>") {
		t.Error("svg incomplete")
	}
}

// NLDM evaluation must agree with Elmore to first order (same tree, same
// topology — the table is synthesized around the linear model).
func TestIntegrationNLDMEnvelope(t *testing.T) {
	tc := ASAP7()
	p, err := GenerateBenchmark("C5", 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	el, err := Evaluate(out.Tree, tc)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := EvaluateNLDM(out.Tree, tc)
	if err != nil {
		t.Fatal(err)
	}
	ratio := nl.Latency / el.Latency
	if ratio < 1.0 || ratio > 1.35 {
		t.Errorf("NLDM/Elmore latency ratio %v outside envelope", ratio)
	}
	if nl.MaxSlew <= 0 || nl.MaxSlew > 500 {
		t.Errorf("worst slew %v ps implausible", nl.MaxSlew)
	}
}

// Determinism across the whole public pipeline.
func TestIntegrationDeterminism(t *testing.T) {
	tc := ASAP7()
	run := func() *Metrics {
		p, err := GenerateBenchmark("C4", 7)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Synthesize(p.Root, p.Sinks, tc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return out.Metrics
	}
	a, b := run(), run()
	if a.Latency != b.Latency || a.Skew != b.Skew || a.Buffers != b.Buffers || a.NTSVs != b.NTSVs {
		t.Fatalf("nondeterministic pipeline: %+v vs %+v", a, b)
	}
	if math.Abs(a.WL-b.WL) > 1e-9 {
		t.Fatalf("WL differs: %v vs %v", a.WL, b.WL)
	}
}
