package dscts

// Determinism regression tests for the parallel execution engine: the
// worker count must never change the synthesized result. Every parallel
// loop in the flow distributes pure per-item work (nearest-centroid
// queries, DP subtree generation, speculative refinement trials, DSE sweep
// points) and all floating-point reductions run in a fixed order, so
// Workers=1 and Workers=N are required to produce identical Metrics — not
// merely close ones.

import (
	"math"
	"testing"

	"dscts/internal/core"
	"dscts/internal/dse"
)

func metricsIdentical(t *testing.T, label string, a, b *Metrics) {
	t.Helper()
	if a.Latency != b.Latency || a.Skew != b.Skew {
		t.Errorf("%s: latency/skew differ: (%v, %v) vs (%v, %v)", label, a.Latency, a.Skew, b.Latency, b.Skew)
	}
	if a.Buffers != b.Buffers || a.NTSVs != b.NTSVs {
		t.Errorf("%s: resources differ: (%d bufs, %d tsvs) vs (%d, %d)", label, a.Buffers, a.NTSVs, b.Buffers, b.NTSVs)
	}
	if a.WL != b.WL {
		t.Errorf("%s: wirelength differs: %v vs %v", label, a.WL, b.WL)
	}
	if len(a.SinkDelays) != len(b.SinkDelays) {
		t.Fatalf("%s: sink coverage differs: %d vs %d", label, len(a.SinkDelays), len(b.SinkDelays))
	}
	for idx, d := range a.SinkDelays {
		if bd, ok := b.SinkDelays[idx]; !ok || bd != d {
			t.Errorf("%s: sink %d delay differs: %v vs %v", label, idx, d, bd)
			return
		}
	}
}

// TestWorkersDeterminism synthesizes every built-in benchmark with one
// worker and with eight and requires bit-identical Metrics (latency, skew,
// buffers, nTSVs, wirelength and every per-sink delay).
func TestWorkersDeterminism(t *testing.T) {
	tc := ASAP7()
	for _, id := range Benchmarks() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && id != "C4" && id != "C5" {
				t.Skip("large design skipped with -short")
			}
			p, err := GenerateBenchmark(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := Synthesize(p.Root, p.Sinks, tc, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parl, err := Synthesize(p.Root, p.Sinks, tc, Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			metricsIdentical(t, id+" workers 1 vs 8", seq.Metrics, parl.Metrics)
			if math.IsNaN(seq.Metrics.Latency) || seq.Metrics.Latency <= 0 {
				t.Fatalf("implausible latency %v", seq.Metrics.Latency)
			}
		})
	}
}

// TestRepeatDeterminismC2 runs the full flow twice on C2 with identical
// seeds and options (once single-threaded, once with the default worker
// pool) and requires all four runs to agree exactly.
func TestRepeatDeterminismC2(t *testing.T) {
	if testing.Short() {
		t.Skip("C2 is the largest design; skipped with -short")
	}
	tc := ASAP7()
	p, err := GenerateBenchmark("C2", 1)
	if err != nil {
		t.Fatal(err)
	}
	runs := make([]*Metrics, 0, 4)
	for _, w := range []int{1, 1, 0, 8} {
		out, err := Synthesize(p.Root, p.Sinks, tc, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, out.Metrics)
	}
	for i := 1; i < len(runs); i++ {
		metricsIdentical(t, "C2 repeat", runs[0], runs[i])
	}
}

// TestWorkersDeterminismDSE checks that a concurrent DSE sweep returns the
// same points in the same order as a single-threaded one.
func TestWorkersDeterminismDSE(t *testing.T) {
	tc := ASAP7()
	p, err := GenerateBenchmark("C4", 1)
	if err != nil {
		t.Fatal(err)
	}
	ths := []int{50, 200, 800}
	run := func(workers int) []DSEPoint {
		pts, err := dse.SweepFanout(p.Root, p.Sinks, tc, ths, core.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatalf("point counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
