// Package dscts is a from-scratch Go implementation of "A Systematic
// Approach for Multi-objective Double-side Clock Tree Synthesis" (Jiang et
// al., DAC 2025): clock tree synthesis that uses both front-side and
// back-side metal layers connected by nano-TSVs.
//
// The flow has three stages (Fig. 4 of the paper):
//
//  1. Hierarchical clock routing — dual-level k-means clustering (Hc/Lc)
//     followed by hierarchical Deferred-Merge Embedding.
//  2. Concurrent buffer & nTSV insertion — multi-objective dynamic
//     programming over the six edge patterns of Fig. 6, with van
//     Ginneken-style pruning per side and MOES root selection (Eq. 3).
//  3. Skew refinement — resource-aware end-point buffers at low-level
//     cluster centroids.
//
// Quick start:
//
//	p := dscts.GenerateBenchmark("C4", 1)               // or parse a DEF
//	out, err := dscts.Synthesize(p.Root, p.Sinks, dscts.ASAP7(), dscts.Options{})
//	fmt.Println(out.Metrics.Latency, out.Metrics.Skew)
//
// # Parallelism and determinism
//
// Synthesize runs on a parallel, allocation-lean execution engine.
// Options.Workers bounds the concurrency of every phase (0 = one worker
// per CPU): the clustering assignment loop and the per-high-cluster
// low-level clusterings are sharded, independent DP subtrees generate
// concurrently through a ready-queue, skew-refinement trials are evaluated
// speculatively in batches, and DSE sweep points run as concurrent whole
// syntheses. The flow is deterministic in the worker count — Workers=1 and
// Workers=N produce bit-identical Metrics (latency, skew, resource counts,
// wirelength and every per-sink delay), because parallel loops distribute
// only pure per-item work and every floating-point reduction runs in a
// fixed order. TestWorkersDeterminism enforces this for all of C1..C5.
//
// Independent of the worker count, the hot paths are algorithmically
// accelerated: nearest-centroid queries use an exact spatial grid instead
// of an O(n·k) scan, the DP prunes through typed sorting into reusable
// per-worker arenas, and refinement judges candidate buffers against an
// incremental what-if view of the RC network instead of re-evaluating the
// whole tree per trial. Measured on the C3/C5 benchmarks this gives ~4.5x
// faster clustering, ~10x fewer insertion allocations and ~7x faster
// end-to-end synthesis at one worker versus the original implementation;
// see PERFORMANCE.md and BENCH_parallel.json for the numbers.
//
// # Serving
//
// The flow is cancellable and observable: SynthesizeContext threads a
// context.Context through every phase (including the DP ready-queue and the
// refinement trial batches) and Options.Progress streams per-phase events.
// On top of that, internal/serve and the cmd/dsctsd daemon expose the
// engine as a multi-tenant HTTP service with a bounded job queue, a
// content-addressed result cache and NDJSON progress streaming; see
// README.md for service usage.
//
// The subpackages under internal/ carry the substrates (geometry, timing
// models, DME, DP insertion, baselines, DEF/LEF I/O); this package exposes
// the surface a downstream user needs. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the reproduction results.
package dscts

import (
	"context"
	"fmt"
	"io"

	"dscts/internal/baseline"
	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/corner"
	"dscts/internal/ctree"
	"dscts/internal/def"
	"dscts/internal/dse"
	"dscts/internal/eco"
	"dscts/internal/eval"
	"dscts/internal/export"
	"dscts/internal/geom"
	"dscts/internal/legal"
	"dscts/internal/partition"
	"dscts/internal/power"
	"dscts/internal/tech"
	"dscts/internal/viz"
)

// Point is a planar location in µm.
type Point = geom.Point

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Tech is the double-side technology model (layers, buffer, nTSV).
type Tech = tech.Tech

// ASAP7 returns the paper's experimental technology: Table I layer
// parasitics, the BUFx4 clock buffer and the nTSV of Sec. IV-A.
func ASAP7() *Tech { return tech.ASAP7() }

// Options configures Synthesize; the zero value reproduces the paper's
// default full-mode double-side flow (Hc=3000, Lc=30, α,β,γ=1,10,1, skew
// refinement with p=23 and m=33).
type Options = core.Options

// SideMode selects single- or double-side synthesis.
type SideMode = core.SideMode

// Side modes.
const (
	// DoubleSide enables the full pattern set including nTSVs.
	DoubleSide SideMode = core.DoubleSide
	// SingleSide restricts insertion to the front side (the "Our
	// Buffered Clock Tree" flow of Table III).
	SingleSide SideMode = core.SingleSide
)

// Outcome is a synthesis result: the annotated clock tree, evaluated
// metrics, DP statistics, the refinement report and per-phase runtimes.
type Outcome = core.Outcome

// Metrics are the evaluated clock-tree numbers (latency, skew, buffers,
// nTSVs, wirelength, per-sink delays).
type Metrics = eval.Metrics

// Tree is the clock-tree data structure with double-side wiring
// annotations.
type Tree = ctree.Tree

// Synthesize runs the paper's full flow on a clock root position and sink
// placement.
func Synthesize(root Point, sinks []Point, tc *Tech, opt Options) (*Outcome, error) {
	return core.Synthesize(root, sinks, tc, opt)
}

// SynthesizeContext is Synthesize with cancellation: the flow observes ctx
// between phases and inside the long-running inner loops (DP generation,
// refinement batches), so a running synthesis stops promptly when ctx is
// cancelled, returning an error that wraps ctx.Err().
func SynthesizeContext(ctx context.Context, root Point, sinks []Point, tc *Tech, opt Options) (*Outcome, error) {
	return core.SynthesizeContext(ctx, root, sinks, tc, opt)
}

// Progress is a flow progress event; deliver a ProgressFunc in
// Options.Progress to observe per-phase starts/finishes (and per-point
// completions in DSE sweeps).
type Progress = core.Progress

// ProgressFunc observes flow progress; it may be called from multiple
// goroutines.
type ProgressFunc = core.ProgressFunc

// Phase names a stage of the flow in Progress events.
type Phase = core.Phase

// The flow's phases as reported in Progress events.
const (
	PhaseRoute     Phase = core.PhaseRoute
	PhaseInsert    Phase = core.PhaseInsert
	PhaseRefine    Phase = core.PhaseRefine
	PhaseEval      Phase = core.PhaseEval
	PhaseSweep     Phase = core.PhaseSweep
	PhaseCorners   Phase = core.PhaseCorners
	PhasePartition Phase = core.PhasePartition
	PhaseStitch    Phase = core.PhaseStitch
)

// PartitionOptions configures the partition-parallel mega-scale pipeline:
// set Options.Partition with MaxSinks > 0 to split placements larger than
// the capacity into regions that synthesize independently and stitch under
// a skew-balanced top tree (DESIGN.md §3). MaxSinks = 0 — or any placement
// that fits one region — runs the monolithic flow bit-identically.
type PartitionOptions = partition.Options

// Partition strategies.
const (
	// PartitionKD is the default recursive median cut (macro-aware,
	// density-following).
	PartitionKD = partition.StrategyKD
	// PartitionGrid tiles the die uniformly, kd-splitting overfull cells.
	PartitionGrid = partition.StrategyGrid
)

// RegionStat is one region's statistics in Outcome.Regions after a
// partitioned run.
type RegionStat = core.RegionStat

// SplitRegions exposes the partitioner directly: it returns the
// capacity-bounded regions the pipeline would synthesize for this
// placement. Useful for inspecting a partition before paying for the run.
func SplitRegions(sinks []Point, opt PartitionOptions) ([]partition.Region, error) {
	return partition.Split(sinks, opt)
}

// GenerateXLBenchmark synthesizes a seeded mega-scale placement with the
// given sink count (chunked generation: bounded working set, deterministic
// for every worker count). Pair with Options.Partition for synthesis.
func GenerateXLBenchmark(sinkCount int, seed int64) (*Placement, error) {
	return bench.GenerateXL(sinkCount, seed)
}

// ECODelta is an engineering change order against a prior synthesis: sinks
// added, moved or removed, plus optional corner- or technology-set
// replacements (DESIGN.md §4).
type ECODelta = eco.Delta

// ECOMove relocates one sink in an ECODelta.
type ECOMove = eco.Move

// ECOStats summarizes an incremental run on its Outcome (dirty scopes,
// reuse, whether a full fallback was forced).
type ECOStats = core.ECOStats

// SynthesizeECO incrementally re-synthesizes a prior outcome under a delta:
// only the dirty scopes (partition regions, or leaf clusters monolithically)
// re-run, and the fresh subtrees are spliced into the retained tree. The
// prior run must have set Options.RetainECO. An empty delta reproduces the
// prior outcome bit-identically; see DESIGN.md §4 for the full contract.
func SynthesizeECO(prev *Outcome, d ECODelta, opt Options) (*Outcome, error) {
	return core.SynthesizeECO(prev, d, opt)
}

// SynthesizeECOContext is SynthesizeECO with cancellation.
func SynthesizeECOContext(ctx context.Context, prev *Outcome, d ECODelta, opt Options) (*Outcome, error) {
	return core.SynthesizeECOContext(ctx, prev, d, opt)
}

// ApplyECODelta computes the post-delta placement and the old→new sink
// index mapping (-1 for removed sinks) without synthesizing anything. The
// delta is validated against the placement first: out-of-range or
// duplicate edits return an error instead of silently not applying.
func ApplyECODelta(sinks []Point, d ECODelta) ([]Point, []int, error) {
	if err := d.Validate(len(sinks)); err != nil {
		return nil, nil, err
	}
	newSinks, oldToNew := eco.Apply(sinks, d)
	return newSinks, oldToNew, nil
}

// Corner is one named PVT corner: multiplicative derating factors on the
// technology's delay-relevant axes (wire RC, buffer R/C/intrinsic and the
// derived NLDM table, nTSV RC, sink pin cap).
type Corner = corner.Corner

// CornerReport is a multi-corner sign-off: per-corner Metrics in corner
// order plus the cross-corner summary (worst-corner skew and latency,
// latency spread, max per-sink divergence).
type CornerReport = corner.Report

// SignoffCorners returns the built-in slow/typ/fast ASAP7 sign-off set.
func SignoffCorners() []Corner { return corner.Presets() }

// CornerByName resolves a built-in corner preset ("slow", "typ", "fast").
func CornerByName(name string) (Corner, error) { return corner.ByName(name) }

// EvaluateCorners signs a finished clock tree off across PVT corners,
// fanning the per-corner evaluations out over `workers` (0 = all CPUs).
// Results are bit-identical for every worker count and corner order; set
// Options.Corners instead to run sign-off as part of Synthesize.
func EvaluateCorners(t *Tree, tc *Tech, corners []Corner, workers int) (*CornerReport, error) {
	return corner.Evaluate(context.Background(), t, tc, corners, corner.Options{Workers: workers})
}

// Evaluate computes metrics for any (possibly externally built) clock tree
// using the Elmore model.
func Evaluate(t *Tree, tc *Tech) (*Metrics, error) {
	return eval.New(tc, eval.Elmore).Evaluate(t)
}

// EvaluateNLDM computes metrics with NLDM buffer tables and PERI slew
// propagation (the paper's sign-off-style evaluation mode).
func EvaluateNLDM(t *Tree, tc *Tech) (*Metrics, error) {
	return eval.New(tc, eval.NLDM).Evaluate(t)
}

// Placement is a benchmark instance: die, clock root and sink positions.
type Placement = bench.Placement

// Benchmarks returns the IDs of the built-in Table II designs (C1..C5).
func Benchmarks() []string {
	var out []string
	for _, d := range bench.Suite() {
		out = append(out, d.ID)
	}
	return out
}

// GenerateBenchmark synthesizes the named Table II design (by ID or name)
// with a deterministic seed.
func GenerateBenchmark(id string, seed int64) (*Placement, error) {
	d, err := bench.ByID(id)
	if err != nil {
		return nil, err
	}
	return bench.Generate(d, seed)
}

// ParseDEF reads a placed DEF and extracts the clock root and sinks.
func ParseDEF(r io.Reader) (*Placement, error) {
	f, err := def.Parse(r)
	if err != nil {
		return nil, err
	}
	return bench.FromDEF(f)
}

// WriteDEF emits a placement as DEF.
func WriteDEF(p *Placement, w io.Writer) error {
	if p == nil {
		return fmt.Errorf("dscts: nil placement")
	}
	return p.ToDEF().Write(w)
}

// OpenROADBaseline builds the TritonCTS-style front-side buffered clock
// tree used as the SOTA comparison point in Table III.
func OpenROADBaseline(root Point, sinks []Point, tc *Tech) (*Tree, error) {
	return baseline.OpenROADTree(root, sinks, tc, baseline.OpenROADOptions{Seed: 7})
}

// FlipVeloso applies the post-CTS back-side method of Veloso et al. [2] to
// a buffered tree in place (flip everything above the leaf level),
// returning the number of nTSVs inserted.
func FlipVeloso(t *Tree) (int, error) { return baseline.Veloso(t) }

// FlipByFanout applies Bethur et al. [7]: flip nets driving at least
// `threshold` sinks.
func FlipByFanout(t *Tree, threshold int) (int, error) {
	return baseline.FanoutFlip(t, threshold)
}

// FlipByCriticality applies Bethur et al. [6]: flip the paths feeding the
// worst `fraction` of sinks by delay.
func FlipByCriticality(t *Tree, tc *Tech, fraction float64) (int, error) {
	return baseline.CriticalFlip(t, tc, fraction)
}

// DSEPoint is one explored solution of the design-space exploration flow.
type DSEPoint = dse.Point

// ExploreFanout sweeps the DSE fanout threshold (Sec. III-E), returning one
// point per threshold. The caller's opt (workers, weights, side mode, skew
// refinement, …) applies to every sweep point; opt.FanoutThreshold itself
// is overridden by each swept value.
func ExploreFanout(root Point, sinks []Point, tc *Tech, thresholds []int, opt Options) ([]DSEPoint, error) {
	return dse.SweepFanout(root, sinks, tc, thresholds, opt)
}

// ExploreFanoutContext is ExploreFanout with cancellation threaded into
// every sweep point's synthesis.
func ExploreFanoutContext(ctx context.Context, root Point, sinks []Point, tc *Tech, thresholds []int, opt Options) ([]DSEPoint, error) {
	return dse.SweepFanoutContext(ctx, root, sinks, tc, thresholds, opt)
}

// ParetoLatency extracts the non-dominated front over
// (#buffers+#nTSVs, latency).
func ParetoLatency(pts []DSEPoint) []DSEPoint {
	return dse.Pareto(pts, dse.Resources, dse.Latency)
}

// ParetoSkew extracts the non-dominated front over
// (#buffers+#nTSVs, skew).
func ParetoSkew(pts []DSEPoint) []DSEPoint {
	return dse.Pareto(pts, dse.Resources, dse.Skew)
}

// DSECornerPoint is one explored solution evaluated across PVT corners.
type DSECornerPoint = dse.CornerPoint

// ExploreFanoutCorners is ExploreFanout with multi-corner sign-off: each
// threshold's tree is evaluated at every corner, and cross-corner Pareto
// extraction (ParetoCornersLatency/ParetoCornersSkew) treats a point as
// dominated only if no corner worsens.
func ExploreFanoutCorners(ctx context.Context, root Point, sinks []Point, tc *Tech, thresholds []int, corners []Corner, opt Options) ([]DSECornerPoint, error) {
	return dse.SweepFanoutCorners(ctx, root, sinks, tc, thresholds, corners, opt)
}

// ParetoCornersLatency extracts the cross-corner front over
// (#buffers+#nTSVs, latency): dominance requires being no worse at every
// corner.
func ParetoCornersLatency(pts []DSECornerPoint) []DSECornerPoint {
	return dse.ParetoCorners(pts, dse.Resources, dse.Latency)
}

// ParetoCornersSkew extracts the cross-corner front over
// (#buffers+#nTSVs, skew).
func ParetoCornersSkew(pts []DSECornerPoint) []DSECornerPoint {
	return dse.ParetoCorners(pts, dse.Resources, dse.Skew)
}

// PowerParams are the operating conditions for clock power estimation.
type PowerParams = power.Params

// PowerBreakdown decomposes clock dynamic power by component.
type PowerBreakdown = power.Breakdown

// DefaultPowerParams returns 1 GHz at 0.7 V.
func DefaultPowerParams() PowerParams { return power.DefaultParams() }

// EstimatePower computes the clock-tree dynamic power breakdown.
func EstimatePower(t *Tree, tc *Tech, p PowerParams) (*PowerBreakdown, error) {
	return power.Estimate(t, tc, p)
}

// LegalizedCells is the legalization outcome (cell placements and
// displacement statistics).
type LegalizedCells = legal.Result

// LegalizeCells snaps the tree's inserted buffers and nTSVs onto the
// row/site grid, avoiding macros and overlaps.
func LegalizeCells(t *Tree, die BBox, macros []BBox, tc *Tech) (*LegalizedCells, error) {
	return legal.Legalize(t, die, macros, tc, legal.Options{})
}

// BBox is an axis-aligned rectangle in µm.
type BBox = geom.BBox

// ExportDEF legalizes the tree's cells and writes the synthesized clock —
// sinks, buffers, nTSVs and per-stage nets — as a placed DEF.
func ExportDEF(w io.Writer, t *Tree, die BBox, macros []BBox, tc *Tech, designName string) (*LegalizedCells, error) {
	return export.WriteDEF(w, t, die, macros, tc, export.Options{DesignName: designName})
}

// RenderSVG draws the double-side clock tree (front wires blue, back wires
// red, buffers green, nTSVs orange) for visual inspection.
func RenderSVG(w io.Writer, t *Tree, die BBox, macros []BBox, title string) error {
	return viz.WriteSVG(w, t, die, macros, viz.Options{Title: title})
}
