# Tier-1 verification and benchmarking entry points.
#
#   make ci          - build + vet + test + fuzz smoke (what the roadmap calls tier-1)
#   make race        - race detector on the determinism + corner + service + ECO suites
#   make fuzz        - 10s fuzz smoke per parser target (DEF, LEF)
#   make golden      - golden-metrics regression suite (make golden-update re-pins)
#   make staticcheck - pinned staticcheck over the whole tree (fetches the tool)
#   make vulncheck   - pinned govulncheck over the whole tree (fetches the tool)
#   make smoke       - the Go-only CLI smoke suite (what CI runs, minus the XL job)
#   make bench       - the substrate + parallel-engine + partition benchmarks
#   make report      - regenerate BENCH_parallel.json
#   make load        - regenerate BENCH_serve.json (service load test)
#   make chaos       - 30s seeded fault-injection soak under -race + report gate (BENCH_chaos.json)
#   make metrics     - short load run + observability gate: /metrics scrape must match /stats
#   make persist     - regenerate BENCH_persist.json (warm-vs-cold restart) + persist gate
#   make corners     - regenerate BENCH_corners.json (multi-corner sign-off scaling)
#   make scale       - regenerate BENCH_scale.json (mono vs partition-parallel XL scaling)
#   make eco         - regenerate BENCH_eco.json (full vs incremental re-synthesis)
#
# Bench regression gate (used by CI and the nightly workflow):
#   go run ./cmd/benchgen -compare BENCH_eco.json /tmp/new.json -max-regress 15%

GO ?= go

# Pinned analysis-tool versions (resolved by `go run pkg@version`; CI relies
# on the module proxy, so bumps here are deliberate and reviewable).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test vet ci race fuzz golden golden-update staticcheck vulncheck smoke bench report load chaos cluster metrics persist corners scale eco

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi

test:
	$(GO) test ./...

ci: build vet test fuzz

race:
	$(GO) test -race -count=1 -run 'Determinism|Parallel|Corner|Partition|ECO' .
	$(GO) test -race -count=1 ./internal/serve/
	$(GO) test -race -count=1 ./internal/corner/
	$(GO) test -race -count=1 ./internal/core/ ./internal/partition/ ./internal/eco/

fuzz:
	$(GO) test -run xxx -fuzz FuzzParseDEF -fuzztime 10s ./internal/def
	$(GO) test -run xxx -fuzz FuzzParseLEF -fuzztime 10s ./internal/lef

golden:
	$(GO) test -run TestGoldenMetrics .

golden-update:
	$(GO) test -run TestGoldenMetrics -update .

staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# The Go-only CLI smoke suite: every assertion the workflow runs through
# cmd/cismoke, so it works on any runner with nothing but a Go toolchain.
smoke:
	$(GO) run ./cmd/dscts -design C4 -json | $(GO) run ./cmd/cismoke synth -sinks 1056
	$(GO) run ./cmd/dscts -design C3 -corners slow,typ,fast -json | $(GO) run ./cmd/cismoke corners
	$(GO) run ./cmd/dscts -design C4 -partition 300 -json | $(GO) run ./cmd/cismoke partition -max-region 300
	$(GO) run ./cmd/dscts -design C4 -move "7:150,150" -remove 3 -add "100,100" -json | $(GO) run ./cmd/cismoke synth -sinks 1056 -eco
	$(GO) run ./cmd/cismoke scale BENCH_scale.json
	$(GO) run ./cmd/cismoke eco -design C3 -pct 1 -min-speedup 5 BENCH_eco.json
	@! $(GO) run ./cmd/dscts -design NOPE -json 2>/dev/null || { echo "expected nonzero exit" >&2; exit 1; }
	@! $(GO) run ./cmd/dscts -design C4 -corners slow,wat -json 2>/dev/null || { echo "expected nonzero exit for bad corner" >&2; exit 1; }
	@! $(GO) run ./cmd/dscts -design C4 -partition 300 -partition-strategy voronoi -json 2>/dev/null || { echo "expected nonzero exit for bad strategy" >&2; exit 1; }
	@! $(GO) run ./cmd/dscts -design C4 -remove 1056 -json 2>/dev/null || { echo "expected nonzero exit for bad delta" >&2; exit 1; }

load:
	$(GO) run ./cmd/benchgen -load

# The chaos soak runs under the race detector: a data race surfaced by
# injected panics/hangs is exactly what this gate exists to catch.
chaos:
	$(GO) run -race ./cmd/benchgen -load -chaos default -duration 30s
	$(GO) run ./cmd/cismoke chaos BENCH_chaos.json
	$(GO) run ./cmd/cismoke metrics BENCH_chaos.json

# The 3-node cluster benchmark + gate: routed load over the ring, an XL
# job whose regions all execute on peers, and a kill-one-node recovery
# phase. The gate requires >= 2.5x the committed single-node throughput
# baseline, zero lost jobs, counter consistency and zero leaks.
cluster:
	$(GO) run ./cmd/benchgen -load -cluster 3
	$(GO) run ./cmd/cismoke cluster -min-ratio 2.5 -baseline BENCH_serve.json BENCH_cluster.json

# The observability consistency gate: replay a short load against an
# in-process daemon, then require the /metrics scrape embedded in the
# report to agree with its /stats snapshot counter-for-counter (they read
# the same atomics, so any drift is an exporter-wiring regression).
metrics:
	$(GO) run ./cmd/benchgen -load -load-jobs 40 -load-conc 8 -load-out /tmp/BENCH_serve_metrics.json
	$(GO) run ./cmd/cismoke metrics /tmp/BENCH_serve_metrics.json

# The persistence gate: replay a workload cold, restart the daemon over the
# same cache directory, and require every replayed request to come back as a
# warm hit — including an ECO delta the first process never saw, which only
# the persisted base snapshot can explain.
persist:
	$(GO) run ./cmd/benchgen -persist -persist-out BENCH_persist.json
	$(GO) run ./cmd/cismoke persist BENCH_persist.json

corners:
	$(GO) run ./cmd/benchgen -corners-out BENCH_corners.json

scale:
	$(GO) run ./cmd/benchgen -scale-out BENCH_scale.json -scale-workers 8

# Pinned to one worker: the CI and nightly regression gates re-measure at
# -eco-workers 1 and compare speedup ratios against this baseline, and
# those ratios are not worker-count invariant.
eco:
	$(GO) run ./cmd/benchgen -eco-out BENCH_eco.json -eco-workers 1

bench:
	$(GO) test -run xxx -bench 'BenchmarkSubstrates|BenchmarkParallelSynthesize|BenchmarkPartitionSynthesize' -benchmem .

report:
	$(GO) run ./cmd/benchgen -bench -bench-out BENCH_parallel.json
