# Tier-1 verification and benchmarking entry points.
#
#   make ci      - build + vet + test (what the roadmap calls tier-1)
#   make race    - race detector on the determinism + service suites
#   make bench   - the substrate + parallel-engine benchmarks
#   make report  - regenerate BENCH_parallel.json
#   make load    - regenerate BENCH_serve.json (service load test)

GO ?= go

.PHONY: all build test vet ci race bench report load

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi

test:
	$(GO) test ./...

ci: build vet test

race:
	$(GO) test -race -count=1 -run 'Determinism|Parallel' .
	$(GO) test -race -count=1 ./internal/serve/

load:
	$(GO) run ./cmd/benchgen -load

bench:
	$(GO) test -run xxx -bench 'BenchmarkSubstrates|BenchmarkParallelSynthesize' -benchmem .

report:
	$(GO) run ./cmd/benchgen -bench -bench-out BENCH_parallel.json
