# Tier-1 verification and benchmarking entry points.
#
#   make ci      - build + vet + test + fuzz smoke (what the roadmap calls tier-1)
#   make race    - race detector on the determinism + corner + service suites
#   make fuzz    - 10s fuzz smoke per parser target (DEF, LEF)
#   make golden  - golden-metrics regression suite (make golden-update re-pins)
#   make bench   - the substrate + parallel-engine + partition benchmarks
#   make report  - regenerate BENCH_parallel.json
#   make load    - regenerate BENCH_serve.json (service load test)
#   make corners - regenerate BENCH_corners.json (multi-corner sign-off scaling)
#   make scale   - regenerate BENCH_scale.json (mono vs partition-parallel XL scaling)

GO ?= go

.PHONY: all build test vet ci race fuzz golden golden-update bench report load corners scale

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi

test:
	$(GO) test ./...

ci: build vet test fuzz

race:
	$(GO) test -race -count=1 -run 'Determinism|Parallel|Corner|Partition' .
	$(GO) test -race -count=1 ./internal/serve/
	$(GO) test -race -count=1 ./internal/corner/
	$(GO) test -race -count=1 ./internal/core/ ./internal/partition/

fuzz:
	$(GO) test -run xxx -fuzz FuzzParseDEF -fuzztime 10s ./internal/def
	$(GO) test -run xxx -fuzz FuzzParseLEF -fuzztime 10s ./internal/lef

golden:
	$(GO) test -run TestGoldenMetrics .

golden-update:
	$(GO) test -run TestGoldenMetrics -update .

load:
	$(GO) run ./cmd/benchgen -load

corners:
	$(GO) run ./cmd/benchgen -corners-out BENCH_corners.json

scale:
	$(GO) run ./cmd/benchgen -scale-out BENCH_scale.json -scale-workers 8

bench:
	$(GO) test -run xxx -bench 'BenchmarkSubstrates|BenchmarkParallelSynthesize|BenchmarkPartitionSynthesize' -benchmem .

report:
	$(GO) run ./cmd/benchgen -bench -bench-out BENCH_parallel.json
