# Tier-1 verification and benchmarking entry points.
#
#   make ci      - build + vet + test (what the roadmap calls tier-1)
#   make bench   - the substrate + parallel-engine benchmarks
#   make report  - regenerate BENCH_parallel.json

GO ?= go

.PHONY: all build test vet ci bench report

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

ci: build vet test

bench:
	$(GO) test -run xxx -bench 'BenchmarkSubstrates|BenchmarkParallelSynthesize' -benchmem .

report:
	$(GO) run ./cmd/benchgen -bench -bench-out BENCH_parallel.json
